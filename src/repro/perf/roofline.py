"""Roofline analysis of the accelerator.

Classic performance model: a layer's attainable throughput is

    min(peak_compute, operational_intensity * memory_bandwidth)

where operational intensity is MACs per byte moved.  On the paper's
platform the ridge point sits exactly where Fig. 12a's behaviour splits:
FC layers (intensity ~0.5 MAC/byte — every weight used once) fall on
the bandwidth roof of the 128-bit streaming port, while CONV layers
(intensity in the hundreds — weights reused across the whole output
plane) sit under the compute roof.  This module computes those numbers
per layer, quantifying *why* the cost model treats the two layer classes
differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.specs import ConvSpec, FCSpec, NetworkSpec
from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = ["RooflinePoint", "RooflineModel"]


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position on the roofline plot."""

    layer: str
    macs: int
    bytes_moved: int
    attainable_gmacs: float
    compute_bound: bool

    @property
    def operational_intensity(self) -> float:
        """MACs per byte of weight+activation traffic."""
        return self.macs / self.bytes_moved


class RooflineModel:
    """Roofline for the paper's systolic array + streaming port.

    Parameters
    ----------
    array:
        Array configuration; the compute roof is
        ``compute_pes x 1 MAC/cycle`` (the sustained rate the Fig. 12
        calibration supports) and the memory roof is the 128-bit
        streaming path.
    """

    def __init__(self, array: ArrayConfig = PAPER_ARRAY):
        self.array = array
        self.peak_gmacs = array.total_pes * array.clock_hz / 1e9
        self.stream_gbytes = (
            array.stream_bits_per_cycle * array.clock_hz / 8e9
        )

    @property
    def ridge_intensity(self) -> float:
        """Operational intensity at the compute/bandwidth ridge."""
        return self.peak_gmacs / self.stream_gbytes

    def _layer_traffic_bytes(self, layer, word_bits: int) -> int:
        word_bytes = word_bits // 8
        if isinstance(layer, ConvSpec):
            weights = layer.weight_count * word_bytes
            activations = (
                layer.input_activations + layer.out_height * layer.out_width * layer.out_channels
            ) * word_bytes
            return weights + activations
        if isinstance(layer, FCSpec):
            weights = layer.weight_count * word_bytes
            activations = (layer.in_features + layer.out_features) * word_bytes
            return weights + activations
        raise TypeError(f"unknown layer spec: {type(layer)!r}")

    def analyze_layer(self, layer, word_bits: int = 16) -> RooflinePoint:
        """Place one layer on the roofline."""
        bytes_moved = self._layer_traffic_bytes(layer, word_bits)
        intensity = layer.macs / bytes_moved
        bandwidth_bound_gmacs = intensity * self.stream_gbytes
        attainable = min(self.peak_gmacs, bandwidth_bound_gmacs)
        return RooflinePoint(
            layer=layer.name,
            macs=layer.macs,
            bytes_moved=bytes_moved,
            attainable_gmacs=attainable,
            compute_bound=bandwidth_bound_gmacs >= self.peak_gmacs,
        )

    def analyze_network(self, spec: NetworkSpec) -> list[RooflinePoint]:
        """Roofline points for every layer of ``spec``."""
        return [self.analyze_layer(l, spec.weight_bits) for l in spec.layers]
