"""Activation (feature-map) footprint accounting.

Fig. 5 reserves 4.2 MB of the global buffer as a scratchpad "for loading
input/weight parameters to PE array and storing intermediate results".
This module checks the implied constraint: at every layer boundary the
live activations (this layer's input + output tiles) must fit the
scratchpad, or the schedule must tile them.  It reports per-layer
activation bytes, the peak, and the tiling factor each layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.nn.specs import ConvSpec, FCSpec, NetworkSpec

__all__ = ["ActivationFootprint", "activation_report", "peak_activation_bytes"]


@dataclass(frozen=True)
class ActivationFootprint:
    """Live activation storage at one layer boundary."""

    layer: str
    input_bytes: int
    output_bytes: int
    tiling_factor: int  # slices needed to fit the scratchpad

    @property
    def total_bytes(self) -> int:
        """Input + output live simultaneously (double-buffered layer)."""
        return self.input_bytes + self.output_bytes

    @property
    def fits_untiled(self) -> bool:
        """Whether the whole boundary fits the scratchpad at once."""
        return self.tiling_factor == 1


def _layer_io_bytes(layer, word_bytes: int) -> tuple[int, int]:
    if isinstance(layer, ConvSpec):
        inp = layer.in_height * layer.in_width * layer.in_channels
        out = layer.pooled_height * layer.pooled_width * layer.out_channels
    elif isinstance(layer, FCSpec):
        inp = layer.in_features
        out = layer.out_features
    else:
        raise TypeError(f"unknown layer spec: {type(layer)!r}")
    return inp * word_bytes, out * word_bytes


def activation_report(
    spec: NetworkSpec, scratchpad_bytes: int = 4_200_000
) -> list[ActivationFootprint]:
    """Per-layer activation footprints against the scratchpad budget."""
    if scratchpad_bytes <= 0:
        raise ValueError("scratchpad must be positive")
    word_bytes = spec.weight_bits // 8
    report = []
    for layer in spec.layers:
        inp, out = _layer_io_bytes(layer, word_bytes)
        total = inp + out
        tiling = max(math.ceil(total / scratchpad_bytes), 1)
        report.append(
            ActivationFootprint(
                layer=layer.name,
                input_bytes=inp,
                output_bytes=out,
                tiling_factor=tiling,
            )
        )
    return report


def peak_activation_bytes(spec: NetworkSpec) -> int:
    """Largest single layer-boundary footprint of the network."""
    word_bytes = spec.weight_bits // 8
    peak = 0
    for layer in spec.layers:
        inp, out = _layer_io_bytes(layer, word_bytes)
        peak = max(peak, inp + out)
    return peak
