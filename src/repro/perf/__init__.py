"""Performance model: per-layer latency/power/energy and training-rate.

Reproduces the paper's hardware evaluation:

* Fig. 12 — per-layer processing latency, active PEs, power and energy
  for forward and backward propagation (:mod:`repro.perf.layer_cost`);
* Fig. 13a — maximum sustainable frames/second per training topology and
  batch size (:mod:`repro.perf.training`);
* Fig. 13b — per-iteration latency/energy totals and the headline
  79-84 % savings of TL-based topologies over E2E.

The model is structural — mapping geometry, streaming bandwidths, pass
counts, memory residency — with a small set of calibration factors fit
against the published Fig. 12 tables (:mod:`repro.perf.calibration`),
because the paper does not publish enough microarchitectural detail to
derive per-PE sustained throughput ab initio.  EXPERIMENTS.md records
model-vs-paper residuals for every cell.
"""

from repro.perf.calibration import (
    CostCalibration,
    DEFAULT_CALIBRATION,
    PAPER_FIG12_FORWARD,
    PAPER_FIG12_BACKWARD,
    PaperLayerRow,
)
from repro.perf.power import PowerModel
from repro.perf.layer_cost import LayerCost, LayerCostModel
from repro.perf.training import (
    TrainingIterationModel,
    IterationCost,
    fps_vs_batch_table,
    savings_vs_e2e,
)
from repro.perf.traffic import (
    TrafficSimulator,
    IterationTraffic,
    EnduranceEstimate,
    FleetLoadProjection,
    project_fleet_load,
)
from repro.perf.battery import BatteryModel, FlightEnvelope
from repro.perf.roofline import RooflineModel, RooflinePoint
from repro.perf.timeline import Phase, IterationTimeline, build_timeline
from repro.perf.sensitivity import (
    SensitivityPoint,
    scale_calibration,
    sensitivity_sweep,
)
from repro.perf.activations import (
    ActivationFootprint,
    activation_report,
    peak_activation_bytes,
)

__all__ = [
    "CostCalibration",
    "DEFAULT_CALIBRATION",
    "PAPER_FIG12_FORWARD",
    "PAPER_FIG12_BACKWARD",
    "PaperLayerRow",
    "PowerModel",
    "LayerCost",
    "LayerCostModel",
    "TrainingIterationModel",
    "IterationCost",
    "fps_vs_batch_table",
    "savings_vs_e2e",
    "TrafficSimulator",
    "IterationTraffic",
    "EnduranceEstimate",
    "FleetLoadProjection",
    "project_fleet_load",
    "BatteryModel",
    "FlightEnvelope",
    "RooflineModel",
    "RooflinePoint",
    "Phase",
    "IterationTimeline",
    "build_timeline",
    "SensitivityPoint",
    "scale_calibration",
    "sensitivity_sweep",
    "ActivationFootprint",
    "activation_report",
    "peak_activation_bytes",
]
