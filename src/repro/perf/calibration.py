"""Published Fig. 12 data and the model's calibration factors.

``PAPER_FIG12_FORWARD`` / ``PAPER_FIG12_BACKWARD`` transcribe the paper's
post-synthesis per-layer tables.  They serve two purposes: calibrating
the handful of efficiency factors the analytic model needs, and acting
as the reference the benchmark harness compares model output against.

Calibration philosophy (see DESIGN.md): everything *structural* — pass
counts, streaming bandwidth, active PEs, memory residency — is derived
from published parameters.  What cannot be derived is each mapping
type's sustained MAC efficiency (how much partial-sum motion inflates
the ideal MAC count) and the backward-pass utilisation of the GEMM-based
convolution backprop; those are fit here and disclosed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "PaperLayerRow",
    "PAPER_FIG12_FORWARD",
    "PAPER_FIG12_BACKWARD",
    "CostCalibration",
    "DEFAULT_CALIBRATION",
]


@dataclass(frozen=True)
class PaperLayerRow:
    """One row of a Fig. 12 table."""

    layer: str
    latency_ms: float
    active_pes: int
    power_mw: float
    energy_mj: float
    nvm_write: bool = False


#: Fig. 12a — forward propagation (latency ms, active PEs, power mW,
#: energy mJ).  Total: 11.9285 ms / 75.2259 mJ.
PAPER_FIG12_FORWARD = (
    PaperLayerRow("CONV1", 0.245, 704, 4134.0, 1.012),
    PaperLayerRow("CONV2", 1.087, 960, 5571.0, 6.056),
    PaperLayerRow("CONV3", 0.804, 960, 5674.0, 4.564),
    PaperLayerRow("CONV4", 1.280, 960, 5692.0, 7.289),
    PaperLayerRow("CONV5", 1.116, 960, 5672.0, 6.330),
    PaperLayerRow("FC1", 5.365, 1024, 6799.0, 36.480),
    PaperLayerRow("FC2", 1.189, 1024, 6800.0, 8.091),
    PaperLayerRow("FC3", 0.562, 1024, 6408.0, 3.603),
    PaperLayerRow("FC4", 0.280, 1024, 6410.0, 1.800),
    PaperLayerRow("FC5", 0.0005, 160, 1910.0, 0.0009),
)

#: Fig. 12b — backward propagation in the E2E baseline, in execution
#: order (output to input).  Layers whose weights live in the STT-MRAM
#: stack are written back after the update (``nvm_write``).
#: Total: 94.2257 ms / 445.331 mJ.
PAPER_FIG12_BACKWARD = (
    PaperLayerRow("FC5", 0.0027, 160, 2094.0, 0.006),
    PaperLayerRow("FC4", 0.594, 1024, 6548.0, 3.890),
    PaperLayerRow("FC3", 1.182, 1024, 6162.0, 7.284),
    PaperLayerRow("FC2", 3.839, 1024, 5390.0, 20.690, nvm_write=True),
    PaperLayerRow("FC1", 29.190, 1024, 5390.0, 157.300, nvm_write=True),
    PaperLayerRow("CONV5", 4.661, 208, 1888.0, 8.804, nvm_write=True),
    PaperLayerRow("CONV4", 5.579, 260, 2112.0, 11.780, nvm_write=True),
    PaperLayerRow("CONV3", 4.710, 260, 2112.0, 9.947, nvm_write=True),
    PaperLayerRow("CONV2", 5.518, 432, 2850.0, 15.730, nvm_write=True),
    PaperLayerRow("CONV1", 38.950, 1024, 5390.0, 209.900, nvm_write=True),
)


@dataclass(frozen=True)
class CostCalibration:
    """Efficiency factors fit against Fig. 12.

    ``conv_forward_efficiency``
        Sustained cycles per ideal MAC cycle, per mapping type.  Type I
        keeps long row convolutions resident (low overhead); Type III's
        short 3-row segments spend proportionally more cycles moving
        partial sums between segments and across sets.
    ``fc_forward_overhead``
        Multiplier over the pure weight-streaming bound (vector fill,
        psum drain, ragged tiles).
    ``fc_backward_overhead``
        Same, for the two backward passes.
    ``conv_backward_efficiency``
        Cycles per ideal GEMM MAC for the backward convolution, keyed by
        layer name for the paper's design point.  CONV1 is a documented
        outlier (~190x): its stride-4, 11x11 im2col/col2im expansion over
        a 227x227 frame serialises the GEMM; the paper offers no
        microarchitectural breakdown, so we adopt the measured per-PE
        throughput.
    ``conv_backward_fallback``
        Efficiency for conv layers not in the table.
    ``update_passes``
        Streaming passes over the trainable weights for the
        batch-gradient-descent weight update (read gradient sum, read
        weights, write weights).
    """

    conv_forward_efficiency: dict[str, float] = field(
        default_factory=lambda: {"I": 1.64, "II": 1.97, "III": 4.8}
    )
    fc_forward_overhead: float = 1.10
    fc_backward_overhead: float = 1.05
    conv_backward_efficiency: dict[str, float] = field(
        default_factory=lambda: {
            "CONV1": 189.3,
            "CONV2": 2.66,
            "CONV3": 4.10,
            "CONV4": 3.23,
            "CONV5": 3.24,
        }
    )
    conv_backward_fallback: float = 3.3
    update_passes: int = 3

    def conv_fwd_eff(self, mapping_type: str) -> float:
        """Forward efficiency for a mapping type ("I"/"II"/"III")."""
        try:
            return self.conv_forward_efficiency[mapping_type]
        except KeyError:
            raise KeyError(f"no calibration for mapping type {mapping_type!r}") from None

    def conv_bwd_eff(self, layer_name: str) -> float:
        """Backward efficiency for a conv layer (fallback for unknown)."""
        return self.conv_backward_efficiency.get(
            layer_name, self.conv_backward_fallback
        )


#: Default calibration, fit against Fig. 12 (see EXPERIMENTS.md for the
#: per-cell residuals).
DEFAULT_CALIBRATION = CostCalibration()
