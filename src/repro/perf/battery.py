"""Drone battery and flight-range model.

The paper's closing claim: lower training energy "finally improves the
drone's battery life and speed".  This module quantifies that: given a
battery, a hover/locomotion power model and a compute load (energy per
frame at a given frame rate), it reports flight endurance and range for
each training topology — the last arrow of the co-design's causal chain
(write-cheap memory -> faster iterations -> higher fps -> faster flight,
and less compute energy -> longer flight).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.training import IterationCost

__all__ = ["BatteryModel", "FlightEnvelope"]

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class FlightEnvelope:
    """Endurance/range of one (topology, batch) point."""

    config_name: str
    compute_power_w: float
    total_power_w: float
    endurance_s: float
    velocity_m_s: float

    @property
    def range_m(self) -> float:
        """Distance coverable on one charge at the safe velocity."""
        return self.endurance_s * self.velocity_m_s

    @property
    def compute_fraction(self) -> float:
        """Share of total power spent on learning/inference."""
        return self.compute_power_w / self.total_power_w


@dataclass(frozen=True)
class BatteryModel:
    """A small drone's battery and platform power.

    Defaults describe a ~250 g class micro-drone: 20 Wh battery, ~40 W
    to hover, and drag growing quadratically with speed.
    """

    capacity_wh: float = 20.0
    hover_power_w: float = 40.0
    drag_w_per_m2_s2: float = 0.15

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0 or self.hover_power_w <= 0:
            raise ValueError("battery parameters must be positive")
        if self.drag_w_per_m2_s2 < 0:
            raise ValueError("drag coefficient must be non-negative")

    def locomotion_power_w(self, velocity_m_s: float) -> float:
        """Hover plus speed-dependent drag power."""
        if velocity_m_s < 0:
            raise ValueError("velocity must be non-negative")
        return self.hover_power_w + self.drag_w_per_m2_s2 * velocity_m_s**2

    def envelope(
        self,
        iteration: IterationCost,
        d_min: float,
        velocity_cap_m_s: float = 15.0,
    ) -> FlightEnvelope:
        """Flight envelope for one training-iteration cost.

        The drone flies at the fastest safe velocity its frame rate
        allows (``fps * d_min``, capped by the airframe), while the
        compute subsystem draws its sustained training power.
        """
        if d_min <= 0:
            raise ValueError("d_min must be positive")
        if velocity_cap_m_s <= 0:
            raise ValueError("velocity cap must be positive")
        velocity = min(iteration.fps * d_min, velocity_cap_m_s)
        compute_power = iteration.iteration_energy_j * iteration.fps
        total_power = self.locomotion_power_w(velocity) + compute_power
        endurance = self.capacity_wh * SECONDS_PER_HOUR / total_power
        return FlightEnvelope(
            config_name=iteration.config_name,
            compute_power_w=compute_power,
            total_power_w=total_power,
            endurance_s=endurance,
            velocity_m_s=velocity,
        )
