"""Chip power model.

Fig. 12 reports per-layer power alongside active-PE counts; a linear
model ``P = P_base + N_active * p_pe`` fits the published rows to within
~13 % (forward) / ~17 % (backward) — the residual is per-layer switching
activity the paper does not break out.  The default coefficients below
are least-squares fits over the corresponding Fig. 12 table.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Linear active-PE power model (watts)."""

    forward_base_w: float = 0.812
    forward_per_pe_w: float = 5.335e-3
    backward_base_w: float = 0.999
    backward_per_pe_w: float = 4.650e-3

    def __post_init__(self) -> None:
        if min(
            self.forward_base_w,
            self.forward_per_pe_w,
            self.backward_base_w,
            self.backward_per_pe_w,
        ) <= 0:
            raise ValueError("power coefficients must be positive")

    def forward_power_w(self, active_pes: int) -> float:
        """Chip power during a forward-propagation layer."""
        if active_pes < 0:
            raise ValueError("active_pes must be non-negative")
        return self.forward_base_w + active_pes * self.forward_per_pe_w

    def backward_power_w(self, active_pes: int) -> float:
        """Chip power during a backward-propagation layer."""
        if active_pes < 0:
            raise ValueError("active_pes must be non-negative")
        return self.backward_base_w + active_pes * self.backward_per_pe_w
