"""Persistent spawn-based worker pool with shared-memory array transport.

The executor seams (``repro.parallel.dispatch``) need to ship NumPy
batches to long-lived worker processes thousands of times per run, so
the transport avoids the two classic process-pool taxes:

* **Fork/teardown per call** — workers are spawned once (``spawn``
  context: no inherited locks, no copy-on-write surprises) and hold
  named *state* objects (a shard's child backend, a world group's
  geometry) shipped once and refreshed only when the owner bumps its
  version, not per call.
* **Pickling bulk arrays** — each worker owns one host-allocated
  shared-memory block per direction; :func:`_pack` parks large
  contiguous ndarrays there and sends tiny :class:`ShmRef` markers over
  the pipe instead.  Arrays that don't fit fall back to the pipe pickle
  transparently, and the host grows a too-small inbound block in place
  (workers ack the re-attach before the next task uses it).

The protocol is strictly one outstanding request per worker (the pipe
is FIFO), which keeps scheduling deterministic: ``map`` round-robins
tasks over the first ``W`` workers, so task *i* always lands on worker
``i % W`` regardless of timing.  Determinism of the *work* is the
callers' job — worker functions must be pure (see
:mod:`repro.parallel.procstate` for why the ``PROBE``/``FAULTS`` seams
stay coordinator-only).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import traceback
from multiprocessing import shared_memory

import numpy as np

from repro.parallel.procstate import mark_worker

__all__ = [
    "WorkerPool",
    "WorkerError",
    "ShmRef",
    "get_pool",
    "shutdown_pool",
    "resolve_workers",
    "cpu_count",
]

#: Arrays smaller than this ride the pipe pickle; the shm round-trip
#: (alignment + copy bookkeeping) only pays off for real batches.
_SHM_MIN_BYTES = 2048
_SHM_ALIGN = 64
_DEFAULT_SHM_BYTES = 1 << 22  # 4 MiB per direction per worker


def cpu_count() -> int:
    """CPUs this process may use (affinity-aware where available)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(spec, tasks: int | None = None) -> int:
    """Turn a ``--workers`` value (``'auto'``, ``'N'``, int) into a size.

    ``'auto'`` means one worker per available CPU; an explicit count is
    honoured as given.  When ``tasks`` is known the result is capped at
    it — more workers than tasks would only sit idle.  ``1`` means the
    serial path (no pool at all).
    """
    if isinstance(spec, str):
        text = spec.strip().lower()
        n = cpu_count() if text == "auto" else int(text)
    else:
        n = int(spec)
    if n < 1:
        raise ValueError(f"workers must be >= 1, got {spec!r}")
    if tasks is not None:
        n = min(n, max(int(tasks), 1))
    return n


class WorkerError(RuntimeError):
    """A task raised inside a pool worker; carries the remote traceback."""


class ShmRef:
    """Marker standing in for an ndarray parked in shared memory."""

    __slots__ = ("offset", "shape", "dtype")

    def __init__(self, offset: int, shape: tuple, dtype: str):
        self.offset = offset
        self.shape = shape
        self.dtype = dtype

    def __reduce__(self):
        return (ShmRef, (self.offset, self.shape, self.dtype))


def _aligned(offset: int) -> int:
    return (offset + _SHM_ALIGN - 1) // _SHM_ALIGN * _SHM_ALIGN


def _pack(obj, buf, used: list):
    """Copy large ndarrays in ``obj`` into ``buf``, returning markers.

    Recurses through tuples/lists/dicts only — other objects (cost
    dataclasses, scalars) stay inline in the pipe pickle.  ``used`` is a
    one-element running-offset cell.  Overflow falls back to inline.
    """
    if isinstance(obj, np.ndarray):
        if buf is None or obj.nbytes < _SHM_MIN_BYTES:
            return obj
        flat = np.ascontiguousarray(obj)
        offset = _aligned(used[0])
        if offset + flat.nbytes > len(buf):
            return obj
        view = np.ndarray(flat.shape, dtype=flat.dtype, buffer=buf, offset=offset)
        view[...] = flat
        used[0] = offset + flat.nbytes
        return ShmRef(offset, flat.shape, flat.dtype.str)
    if isinstance(obj, tuple):
        return tuple(_pack(item, buf, used) for item in obj)
    if isinstance(obj, list):
        return [_pack(item, buf, used) for item in obj]
    if isinstance(obj, dict):
        return {key: _pack(item, buf, used) for key, item in obj.items()}
    return obj


def _unpack(obj, buf):
    """Inverse of :func:`_pack`; copies marker payloads out of ``buf``."""
    if isinstance(obj, ShmRef):
        view = np.ndarray(
            obj.shape, dtype=np.dtype(obj.dtype), buffer=buf, offset=obj.offset
        )
        return view.copy()
    if isinstance(obj, tuple):
        return tuple(_unpack(item, buf) for item in obj)
    if isinstance(obj, list):
        return [_unpack(item, buf) for item in obj]
    if isinstance(obj, dict):
        return {key: _unpack(item, buf) for key, item in obj.items()}
    return obj


def _payload_bytes(obj) -> int:
    """Upper bound on the shm bytes :func:`_pack` would park for ``obj``."""
    if isinstance(obj, np.ndarray):
        return _aligned(obj.nbytes) + _SHM_ALIGN if obj.nbytes >= _SHM_MIN_BYTES else 0
    if isinstance(obj, (tuple, list)):
        return sum(_payload_bytes(item) for item in obj)
    if isinstance(obj, dict):
        return sum(_payload_bytes(item) for item in obj.values())
    return 0


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a host-owned block; the host unlinks it at shutdown.

    Spawn workers share the host's resource-tracker process, so the
    attach-side registration is a duplicate set-add there and the
    host's single unlink/unregister at shutdown settles the books —
    no per-worker unregister, which would steal the host's entry.
    """
    return shared_memory.SharedMemory(name=name)


def _worker_main(conn, in_name: str, out_name: str) -> None:
    """Worker loop: hold named states, answer set/call/shm/stop messages."""
    mark_worker()
    in_shm = _attach(in_name)
    out_shm = _attach(out_name)
    states: dict = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "stop":
            break
        try:
            if kind == "shm":
                _, which, name = msg
                if which == "in":
                    in_shm.close()
                    in_shm = _attach(name)
                else:
                    out_shm.close()
                    out_shm = _attach(name)
                result = None
            elif kind == "set":
                _, key, payload = msg
                states[key] = _unpack(payload, in_shm.buf)
                result = None
            else:  # "call"
                _, key, fn, packed = msg
                args = _unpack(packed, in_shm.buf)
                result = fn(*args) if key is None else fn(states[key], *args)
            used = [0]
            conn.send(("ok", _pack(result, out_shm.buf, used)))
        except BaseException:
            conn.send(("err", traceback.format_exc()))
    conn.close()


class _Worker:
    __slots__ = ("proc", "conn", "in_shm", "out_shm")

    def __init__(self, proc, conn, in_shm, out_shm):
        self.proc = proc
        self.conn = conn
        self.in_shm = in_shm
        self.out_shm = out_shm


class WorkerPool:
    """A fixed set of spawn workers, one outstanding request each."""

    def __init__(self, workers: int = 1, shm_bytes: int = _DEFAULT_SHM_BYTES):
        self._ctx = mp.get_context("spawn")
        self._shm_bytes = int(shm_bytes)
        self._workers: list[_Worker] = []
        self.grow(workers)

    @property
    def size(self) -> int:
        return len(self._workers)

    def grow(self, workers: int) -> None:
        """Ensure at least ``workers`` live workers (never shrinks)."""
        while len(self._workers) < workers:
            self._workers.append(self._spawn(len(self._workers)))

    def _spawn(self, index: int) -> _Worker:
        in_shm = shared_memory.SharedMemory(create=True, size=self._shm_bytes)
        out_shm = shared_memory.SharedMemory(create=True, size=self._shm_bytes)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, in_shm.name, out_shm.name),
            name=f"repro-pool-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn, in_shm, out_shm)

    # ------------------------------------------------------------------
    def _reserve(self, worker: _Worker, payload) -> None:
        """Grow the worker's inbound block when ``payload`` won't fit.

        Only called while the worker has no outstanding request, so the
        re-attach ack cannot interleave with a task reply.
        """
        need = _payload_bytes(payload)
        if need <= worker.in_shm.size:
            return
        new = shared_memory.SharedMemory(
            create=True, size=max(need, 2 * worker.in_shm.size)
        )
        worker.conn.send(("shm", "in", new.name))
        old = worker.in_shm
        worker.in_shm = new
        status, _ = worker.conn.recv()  # ack: worker attached before unlink
        if status != "ok":
            raise WorkerError("worker failed to re-attach grown shm block")
        old.close()
        old.unlink()

    def send_call(self, w: int, key, fn, args: tuple = ()) -> None:
        """Dispatch ``fn(states[key], *args)`` (``fn(*args)`` if no key)."""
        worker = self._workers[w]
        self._reserve(worker, args)
        used = [0]
        worker.conn.send(("call", key, fn, _pack(args, worker.in_shm.buf, used)))

    def recv(self, w: int):
        """Block for worker ``w``'s reply; re-raise remote failures."""
        worker = self._workers[w]
        try:
            status, payload = worker.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerError(f"pool worker {w} died mid-task") from exc
        if status == "err":
            raise WorkerError(f"pool worker {w} raised:\n{payload}")
        return _unpack(payload, worker.out_shm.buf)

    def set_state(self, w: int, key, payload) -> None:
        """Ship (or replace) the state registered under ``key`` on ``w``."""
        worker = self._workers[w]
        self._reserve(worker, payload)
        used = [0]
        worker.conn.send(("set", key, _pack(payload, worker.in_shm.buf, used)))
        self.recv(w)

    def plan_workers(self, tasks: int, limit: int | None = None) -> int:
        """How many workers ``map`` will actually use for ``tasks``."""
        width = self.size if limit is None else min(limit, self.size)
        return max(1, min(width, tasks))

    def map(self, calls: list, limit: int | None = None) -> list:
        """Run ``(key, fn, args)`` triples; results in call order.

        Deterministic round-robin: call *i* runs on worker ``i % W``
        with ``W = plan_workers(len(calls), limit)``.
        """
        n = len(calls)
        if n == 0:
            return []
        width = self.plan_workers(n, limit)
        results: list = [None] * n
        pending: dict[int, int] = {}
        for i, (key, fn, args) in enumerate(calls):
            w = i % width
            if w in pending:
                results[pending.pop(w)] = self.recv(w)
            self.send_call(w, key, fn, args)
            pending[w] = i
        for w, i in pending.items():
            results[i] = self.recv(w)
        return results

    def run(self, fn, *args):
        """One stateless call on worker 0 (tests, health checks)."""
        self.send_call(0, None, fn, args)
        return self.recv(0)

    def shutdown(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.proc.join(timeout=5)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1)
            worker.conn.close()
            for shm in (worker.in_shm, worker.out_shm):
                try:
                    shm.close()
                    shm.unlink()
                except FileNotFoundError:
                    pass
        self._workers = []


# ----------------------------------------------------------------------
_POOL: WorkerPool | None = None


def get_pool(workers: int) -> WorkerPool:
    """The process-wide pool, grown on demand to at least ``workers``.

    One pool serves every executor (shards and env groups share
    workers); spawn cost is paid once per process, not per seam.
    """
    global _POOL
    if _POOL is None:
        _POOL = WorkerPool(workers)
        atexit.register(shutdown_pool)
    elif _POOL.size < workers:
        _POOL.grow(workers)
    return _POOL


def shutdown_pool() -> None:
    """Tear down the process-wide pool (idempotent)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
