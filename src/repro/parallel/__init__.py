"""Process-parallel execution + cost-oracle memoisation.

Turns the cycle model's *modelled* K× sharding speedups into *measured*
wall-clock ones:

* :mod:`repro.parallel.pool` — a persistent spawn-worker pool with
  shared-memory NumPy transport (``--workers N|auto``; ``workers=1`` is
  the untouched serial path).
* :mod:`repro.parallel.dispatch` — executors that run
  ``ShardedBackend`` child forwards and vec-env world-group kernels on
  that pool, shipping weights/geometry once and deltas on publish.
* :mod:`repro.parallel.memo` — memoisation for the closed-form cost
  oracles with hit/miss counters exported via ``repro.obs``.
* :mod:`repro.parallel.procstate` — the worker-process flag that keeps
  the ``PROBE``/``FAULTS`` seams coordinator-only.
"""

from repro.parallel.memo import (
    MemoCache,
    cache,
    clear_memo_caches,
    memo_disabled,
    memo_stats,
    memoised,
    publish_memo_metrics,
    set_memo_enabled,
)
from repro.parallel.pool import (
    WorkerError,
    WorkerPool,
    cpu_count,
    get_pool,
    resolve_workers,
    shutdown_pool,
)
from repro.parallel.procstate import in_worker, mark_worker

__all__ = [
    "MemoCache",
    "cache",
    "clear_memo_caches",
    "memo_disabled",
    "memo_stats",
    "memoised",
    "publish_memo_metrics",
    "set_memo_enabled",
    "WorkerError",
    "WorkerPool",
    "cpu_count",
    "get_pool",
    "resolve_workers",
    "shutdown_pool",
    "in_worker",
    "mark_worker",
]
