"""Memoisation for the closed-form cost oracles.

The cycle oracles (``systolic/cycles.py`` row-stationary and FC tile
schedules, ``systolic/training.py`` whole-network training cost) are
pure functions of a small hashable geometry signature, yet the hot
loops — agent forward batches, scheduler train steps, ``ShardCost``
merge accounting — re-derive the same algebra every update.  A fleet
round asks for the cost of the *same* layer stack at the *same* batch
size thousands of times; after the first answer, every other call
should pay a dict lookup.

Caches here are process-local (pool workers warm their own copies) and
always count hits/misses so the wall-clock benchmark can pin the hit
rate.  :func:`publish_memo_metrics` exports the counters through the
``repro.obs`` metrics registry as gauges — gauges rather than counters
because the memo tallies are themselves cumulative and re-published
every round.

This module must not import ``repro.obs`` at module level:
``repro.obs.probes`` imports ``repro.parallel.procstate``, which loads
this package — the probe import happens lazily inside
:func:`publish_memo_metrics`.
"""

from __future__ import annotations

import functools
import threading
from contextlib import contextmanager

__all__ = [
    "MemoCache",
    "cache",
    "memoised",
    "memo_enabled",
    "set_memo_enabled",
    "memo_disabled",
    "memo_stats",
    "clear_memo_caches",
    "publish_memo_metrics",
]

_MISS = object()
_ENABLED = True
_LOCK = threading.Lock()
_CACHES: dict[str, "MemoCache"] = {}


class MemoCache:
    """One named memo table with always-on hit/miss tallies."""

    __slots__ = ("name", "hits", "misses", "_store")

    def __init__(self, name: str):
        self.name = name
        self.hits = 0
        self.misses = 0
        self._store: dict = {}

    def get(self, key):
        """The cached value, or the module ``_MISS`` sentinel; counts."""
        value = self._store.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key, value):
        """Store and return ``value`` (does not count as hit or miss)."""
        self._store[key] = value
        return value

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def cache(name: str) -> MemoCache:
    """Get or create the process-wide cache registered under ``name``."""
    with _LOCK:
        memo = _CACHES.get(name)
        if memo is None:
            memo = _CACHES[name] = MemoCache(name)
    return memo


def memoised(name: str):
    """Memoise a pure function of hashable arguments under ``name``.

    The wrapped function keeps the original behind ``__wrapped__`` and
    exposes its table as ``.memo``.  With memoisation disabled
    (:func:`set_memo_enabled` / :func:`memo_disabled`) the call falls
    straight through to the original — the pre-memo recompute path the
    wall-clock benchmark uses as its baseline.
    """

    def wrap(fn):
        memo = cache(name)

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            if not _ENABLED:
                return fn(*args, **kwargs)
            key = (args, tuple(sorted(kwargs.items()))) if kwargs else args
            value = memo.get(key)
            if value is _MISS:
                value = memo.put(key, fn(*args, **kwargs))
            return value

        inner.memo = memo
        return inner

    return wrap


def memo_enabled() -> bool:
    return _ENABLED


def set_memo_enabled(flag: bool) -> bool:
    """Set the global memo switch; returns the previous value."""
    global _ENABLED
    prior = _ENABLED
    _ENABLED = bool(flag)
    return prior


@contextmanager
def memo_disabled():
    """Run a block on the recompute path (baseline measurements)."""
    prior = set_memo_enabled(False)
    try:
        yield
    finally:
        set_memo_enabled(prior)


def clear_memo_caches() -> None:
    """Empty every table and zero its counters (test isolation)."""
    with _LOCK:
        caches = list(_CACHES.values())
    for memo in caches:
        memo.clear()


def memo_stats() -> dict[str, dict]:
    """``{oracle: {hits, misses, entries, hit_rate}}``, sorted by name."""
    with _LOCK:
        caches = sorted(_CACHES.values(), key=lambda m: m.name)
    return {
        memo.name: {
            "hits": memo.hits,
            "misses": memo.misses,
            "entries": len(memo),
            "hit_rate": memo.hit_rate,
        }
        for memo in caches
    }


def publish_memo_metrics(probe=None) -> dict[str, dict]:
    """Export hit/miss tallies through the ``repro.obs`` registry.

    Writes per-oracle ``repro_memo_hits`` / ``repro_memo_misses`` /
    ``repro_memo_hit_rate`` gauges plus the aggregate
    ``repro_memo_hit_rate_overall``, and returns :func:`memo_stats`.
    No-op (stats still returned) while the probe is inactive.
    """
    if probe is None:
        from repro.obs.probes import PROBE as probe  # lazy: avoids cycle

    stats = memo_stats()
    if getattr(probe, "enabled", False):
        hits = misses = 0
        for name, row in stats.items():
            hits += row["hits"]
            misses += row["misses"]
            probe.gauge("repro_memo_hits", row["hits"], oracle=name)
            probe.gauge("repro_memo_misses", row["misses"], oracle=name)
            probe.gauge("repro_memo_hit_rate", row["hit_rate"], oracle=name)
            probe.gauge("repro_memo_entries", row["entries"], oracle=name)
        total = hits + misses
        probe.gauge(
            "repro_memo_hit_rate_overall", hits / total if total else 0.0
        )
    return stats
