"""Executor seams: shard forwards and env group kernels on the pool.

Two callers, one pattern.  Each executor owns a set of *named states*
living in the workers (a shard's child backend, a world group's static
geometry), ships them once, and afterwards sends only the per-call
batch.  The worker functions below are **pure**: they run with the
``PROBE``/``FAULTS`` seams disabled (fresh spawn processes never
activate them — :mod:`repro.parallel.procstate`), so a chunk forwarded
in a worker computes exactly what the same chunk computes inline.  All
observability replay (span re-emission) and all fault decisions stay in
the coordinator, which is what keeps parallel runs bitwise identical to
serial ones at any worker count.
"""

from __future__ import annotations

import time

from repro.parallel.pool import get_pool

__all__ = ["ShardExecutor", "GroupExecutor"]


# ------------------------- worker functions ---------------------------
# Module-level so they pickle by reference; imports of heavier repro
# modules happen lazily inside, keeping this module importable from the
# bottom of the stack.


def _w_forward(child, chunk):
    """One shard child forward; returns ``(q_values, cost, wall_ns)``.

    The wall time is measured in the worker so the coordinator can
    re-emit a faithful ``shard.forward`` span without timing the IPC.
    """
    start = time.perf_counter_ns()
    q_values, cost = child.forward_batch(chunk)
    return q_values, cost, time.perf_counter_ns() - start


def _w_refresh(child, raw, value):
    """Apply a weight delta to a resident child backend.

    The systolic forward reads only the quantized raw codes and the
    dequantized values (plus static layer specs), so replacing these two
    dicts is a complete weight refresh.
    """
    child._raw = raw
    child._value = value


def _w_render_group(group, origins, dirs, rows):
    from repro.fleet.vec_env import group_horizontal

    return group_horizontal(group, origins, dirs, rows)


# Helpers for the spawn-safety regression test: workers must not be able
# to activate the coordinator-only seams.
def _w_activate_probe():
    from repro.obs.probes import PROBE

    PROBE.activate()


def _w_activate_faults():
    from repro.faults.injector import FAULTS
    from repro.faults.plan import FaultPlan

    FAULTS.activate(FaultPlan(seed=1))


def _w_in_worker():
    from repro.parallel.procstate import in_worker

    return in_worker()


# --------------------------- executors --------------------------------


class ShardExecutor:
    """Runs sample-policy shard child forwards on the process pool.

    The child backend (network, quantized weight codes, layer specs)
    ships to each worker once; afterwards only weight-dict deltas
    travel, and only when the owner bumps its ``_weights_version``
    (``WeightBus`` publish, chaos weight corruption, buffer restore).
    """

    def __init__(self, backend, workers: int):
        self.backend = backend
        self.workers = int(workers)
        self._key = f"shard-child-{id(backend)}"
        self._shipped: dict[int, int] = {}  # worker index -> weights version

    def _ensure(self, width: int) -> None:
        version = self.backend._weights_version
        child = self.backend.children[0]
        pool = get_pool(self.workers)
        for w in range(width):
            if self._shipped.get(w) == version:
                continue
            if w in self._shipped:
                pool.send_call(
                    w, self._key, _w_refresh, (dict(child._raw), dict(child._value))
                )
                pool.recv(w)
            else:
                pool.set_state(w, self._key, child)
            self._shipped[w] = version

    def forward_chunks(self, chunks: list) -> list:
        """Forward each chunk; ``[(q, cost, wall_ns, worker)]`` in order."""
        pool = get_pool(self.workers)
        width = pool.plan_workers(len(chunks), self.workers)
        self._ensure(width)
        results = pool.map(
            [(self._key, _w_forward, (chunk,)) for chunk in chunks],
            limit=self.workers,
        )
        return [
            (q_values, cost, wall_ns, i % width)
            for i, (q_values, cost, wall_ns) in enumerate(results)
        ]


class GroupExecutor:
    """Runs world-group ray-intersection kernels on the process pool.

    Group geometry is static for the life of a vec-env, so each group
    ships to its assigned worker once; per call only poses travel.
    """

    def __init__(self, groups, workers: int):
        self.groups = list(groups)
        self.workers = int(workers)
        self._prefix = f"world-group-{id(self)}"
        self._shipped: set = set()  # (worker index, group id) pairs

    def render(self, tasks: list) -> list:
        """``tasks`` = ``[(gid, origins, dirs, rows)]`` → horizontals."""
        pool = get_pool(self.workers)
        width = pool.plan_workers(len(tasks), self.workers)
        calls = []
        for i, (gid, origins, dirs, rows) in enumerate(tasks):
            w = i % width
            key = f"{self._prefix}-{gid}"
            if (w, gid) not in self._shipped:
                pool.set_state(w, key, self.groups[gid])
                self._shipped.add((w, gid))
            calls.append((key, _w_render_group, (origins, dirs, rows)))
        return pool.map(calls, limit=self.workers)
