"""Process-role flag: is this interpreter a pool worker?

The observability (``PROBE``) and fault-injection (``FAULTS``) seams are
*process-local by design*: the coordinator process owns the only live
tracer, metrics registry and fault ledger, and pool workers run pure
compute (child forwards, env group kernels) with both seams disabled.
A worker that activated either seam would accumulate spans or fault
events in a process that nobody ever drains — silent data loss dressed
up as telemetry.  ``Probe.activate`` and ``FaultSeam.activate`` call
:func:`in_worker` and fail loudly instead.

This module must stay import-free (stdlib only, no numpy, no repro
imports): it is imported by ``repro.obs.probes`` and
``repro.faults.injector``, which sit below everything else.
"""

from __future__ import annotations

__all__ = ["mark_worker", "in_worker"]

_IN_WORKER = False


def mark_worker() -> None:
    """Flag this process as a pool worker (called once in worker main)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """True iff this interpreter is a ``repro.parallel`` pool worker."""
    return _IN_WORKER
