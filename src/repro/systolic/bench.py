"""Systolic fast-path throughput harness.

Backs ``python -m repro systolic-bench`` and
``benchmarks/test_systolic_throughput.py``:

* :func:`bench_conv_fast_vs_pe` times one convolution layer under both
  fidelities of :class:`~repro.systolic.functional.FunctionalSystolicArray`
  (verifying on the way that outputs agree and cycle counters are
  identical) and reports the fast-over-oracle speedup.
* :func:`simulate_network_forward` runs a whole network spec — by
  default the paper-scale modified AlexNet, something the PE-loop
  oracle could never finish — through the functional simulators layer
  by layer, collecting wall time, MACs and array cycles per layer.

Local response norm layers are shape-preserving and run on the
comparator/vector units outside the MAC datapath, so the forward walk
skips them; max-pools execute functionally (they change the geometry
the next conv layer is costed at).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.fc_functional import simulate_fc_forward
from repro.systolic.functional import FunctionalSystolicArray

__all__ = [
    "ConvBenchResult",
    "LayerForwardCost",
    "NetworkForwardResult",
    "bench_conv_fast_vs_pe",
    "bench_payload",
    "simulate_network_forward",
]


@dataclass(frozen=True)
class ConvBenchResult:
    """Fast-vs-oracle timing of one convolution layer."""

    channels: int
    side: int
    filters: int
    kernel: int
    stride: int
    macs: int
    pe_seconds: float
    fast_seconds: float

    @property
    def shape(self) -> str:
        """Human-readable layer geometry."""
        return (
            f"{self.channels}x{self.side}x{self.side} -> {self.filters} "
            f"filters {self.kernel}x{self.kernel}/s{self.stride}"
        )

    @property
    def speedup(self) -> float:
        """Fast-path speedup over the PE-loop oracle."""
        return self.pe_seconds / self.fast_seconds

    @property
    def fast_macs_per_second(self) -> float:
        """Simulated MAC throughput of the fast path."""
        return self.macs / self.fast_seconds

    @property
    def pe_macs_per_second(self) -> float:
        """Simulated MAC throughput of the oracle."""
        return self.macs / self.pe_seconds


def bench_conv_fast_vs_pe(
    channels: int = 3,
    side: int = 32,
    filters: int = 16,
    kernel: int = 3,
    stride: int = 1,
    pe_repeats: int = 2,
    fast_repeats: int = 10,
    seed: int = 0,
    config: ArrayConfig | None = None,
) -> ConvBenchResult:
    """Time one conv layer under both fidelities (min over repeats).

    Also cross-checks the two paths against each other — outputs must
    agree and cycle statistics must be *identical* — so every benchmark
    run re-proves the equivalence it is measuring.
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(channels, side, side))
    w = rng.normal(size=(filters, channels, kernel, kernel))
    fast_sim = FunctionalSystolicArray(config, fidelity="fast")
    pe_sim = FunctionalSystolicArray(config, fidelity="pe")

    pe_seconds = float("inf")
    for _ in range(max(pe_repeats, 1)):
        start = time.perf_counter()
        pe_out, pe_stats = pe_sim.conv2d(x, w, stride=stride)
        pe_seconds = min(pe_seconds, time.perf_counter() - start)
    fast_seconds = float("inf")
    for _ in range(max(fast_repeats, 1)):
        start = time.perf_counter()
        fast_out, fast_stats = fast_sim.conv2d(x, w, stride=stride)
        fast_seconds = min(fast_seconds, time.perf_counter() - start)

    if fast_stats != pe_stats:
        raise RuntimeError(
            f"cycle statistics diverged: fast {fast_stats} vs oracle {pe_stats}"
        )
    if not np.allclose(fast_out, pe_out, rtol=1e-10, atol=1e-10):
        raise RuntimeError("fast-path output diverged from the PE oracle")

    return ConvBenchResult(
        channels=channels,
        side=side,
        filters=filters,
        kernel=kernel,
        stride=stride,
        macs=pe_stats.total_pe_cycles,
        pe_seconds=pe_seconds,
        fast_seconds=fast_seconds,
    )


@dataclass(frozen=True)
class LayerForwardCost:
    """Wall time and array cost of one simulated layer."""

    name: str
    kind: str  # "conv" | "fc"
    macs: int
    array_cycles: int
    wall_seconds: float


@dataclass(frozen=True)
class NetworkForwardResult:
    """A full functional forward pass, layer by layer."""

    network: str
    batch: int
    fidelity: str
    layers: tuple[LayerForwardCost, ...]
    wall_seconds: float

    @property
    def total_macs(self) -> int:
        """MACs across all simulated layers."""
        return sum(l.macs for l in self.layers)

    @property
    def total_array_cycles(self) -> int:
        """Array cycles (MAC + drain wavefronts) across all layers."""
        return sum(l.array_cycles for l in self.layers)

    @property
    def macs_per_second(self) -> float:
        """Simulated MAC throughput of the whole pass."""
        return self.total_macs / self.wall_seconds

    def array_seconds(self, config: ArrayConfig = PAPER_ARRAY) -> float:
        """Time the modelled array would need for the pass."""
        return config.seconds(self.total_array_cycles)


def bench_payload(
    result: ConvBenchResult,
    forward: NetworkForwardResult | None = None,
) -> dict:
    """Machine-readable benchmark results.

    One schema for every emitter — the ``systolic-bench --json`` CLI
    flag and the ``BENCH_systolic.json`` benchmark artifact — so
    trajectory-tracking consumers parse a single format.
    """
    payload = {
        "bench_layer": {
            "shape": result.shape,
            "speedup": result.speedup,
            "pe_seconds": result.pe_seconds,
            "fast_seconds": result.fast_seconds,
            "fast_macs_per_second": result.fast_macs_per_second,
            "pe_macs_per_second": result.pe_macs_per_second,
        },
    }
    if forward is not None:
        payload["alexnet_forward"] = {
            "network": forward.network,
            "batch": forward.batch,
            "wall_seconds": forward.wall_seconds,
            "macs_per_second": forward.macs_per_second,
            "total_macs": forward.total_macs,
            "total_array_cycles": forward.total_array_cycles,
            "modelled_array_seconds": forward.array_seconds(),
        }
    return payload


def simulate_network_forward(
    spec=None,
    batch: int = 1,
    fidelity: str = "fast",
    seed: int = 0,
    config: ArrayConfig | None = None,
) -> NetworkForwardResult:
    """Run a network spec through the functional systolic simulators.

    ``spec`` defaults to the paper-scale modified AlexNet
    (:func:`repro.nn.alexnet.modified_alexnet_spec`) — at that scale
    only the fast fidelity is practical; the PE oracle remains available
    for reduced specs.  Weights are randomly initialised (the cost
    accounting depends only on shapes).
    """
    # Imported lazily: repro.nn imports repro.systolic.kernels, so a
    # module-level import here would be circular.
    from repro.nn.alexnet import modified_alexnet_spec
    from repro.nn.layers import MaxPool2D
    from repro.nn.specs import ConvSpec, FCSpec

    if spec is None:
        spec = modified_alexnet_spec()
    rng = np.random.default_rng(seed)
    sim = FunctionalSystolicArray(config, fidelity=fidelity)
    array = sim.config

    x = rng.normal(size=(batch, spec.input_channels, spec.input_side, spec.input_side))
    layers: list[LayerForwardCost] = []
    total_start = time.perf_counter()
    flattened = False
    for layer_spec in spec.layers:
        if isinstance(layer_spec, ConvSpec):
            w = rng.normal(
                size=(
                    layer_spec.out_channels,
                    layer_spec.in_channels,
                    layer_spec.kernel,
                    layer_spec.kernel,
                ),
                scale=0.05,
            )
            start = time.perf_counter()
            x, stats = sim.conv2d(
                x, w, stride=layer_spec.stride, pad=layer_spec.pad
            )
            conv_seconds = time.perf_counter() - start
            # ReLU/pool run outside the timed window: the cost fields
            # cover the convolution only, so must the wall time.
            x = np.maximum(x, 0.0)
            if layer_spec.pool is not None:
                x = MaxPool2D(layer_spec.pool, layer_spec.pool_stride).forward(x)
            layers.append(
                LayerForwardCost(
                    name=layer_spec.name,
                    kind="conv",
                    macs=stats.total_pe_cycles,
                    array_cycles=stats.total_cycles,
                    wall_seconds=conv_seconds,
                )
            )
        elif isinstance(layer_spec, FCSpec):
            if not flattened:
                x = x.reshape(batch, -1)
                flattened = True
            m = rng.normal(
                size=(layer_spec.in_features, layer_spec.out_features), scale=0.05
            )
            start = time.perf_counter()
            result = simulate_fc_forward(x, m, array=array, fidelity=fidelity)
            x = result.output
            if layer_spec is not spec.layers[-1]:
                x = np.maximum(x, 0.0)
            layers.append(
                LayerForwardCost(
                    name=layer_spec.name,
                    kind="fc",
                    macs=result.mac_cycles,
                    array_cycles=result.total_cycles,
                    wall_seconds=time.perf_counter() - start,
                )
            )
        else:  # pragma: no cover - spec classes are closed
            raise TypeError(f"unknown spec type: {type(layer_spec)!r}")
    return NetworkForwardResult(
        network=spec.name,
        batch=batch,
        fidelity=fidelity,
        layers=tuple(layers),
        wall_seconds=time.perf_counter() - total_start,
    )
