"""Convolution mapping schemes: Fig. 6 Type I / II / III.

The mapping decides how filter rows, input rows and output channels are
laid over the 32x32 array:

* **Type I** (CONV1): all input channels of a filter row fit in one PE's
  register file.  The array splits into ``rows // kernel_height``
  segments of ``kernel_height`` rows; every segment computes a different
  group of output channels on the same input, and all 32 columns produce
  output rows in parallel.
* **Type II** (CONV2): input channels no longer fit, so they are split
  into sequential halves; only ``out_width`` columns are used (one
  output row per column).
* **Type III** (CONV3-5): the filter is small enough that two *sets* of
  segments fit side by side in the columns; each set processes half the
  input channels in parallel and their partial sums are added across
  sets (the paper's set-1/set-2 transfer step).

Active-PE counts are reported at row granularity (a used row powers all
32 PEs), which reproduces Fig. 12's numbers: 704 for CONV1, 960 for
CONV2..CONV5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.nn.specs import ConvSpec
from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = ["MappingType", "ConvMapping", "map_conv_layer"]


class MappingType(Enum):
    """The three Fig. 6 schemes."""

    TYPE_I = "I"
    TYPE_II = "II"
    TYPE_III = "III"


#: Output channels mapped per segment for the paper's AlexNet layers, as
#: published in Fig. 6 ("x24", "x14", "x19").  Keyed by kernel size; used
#: when the layer matches the published design point, with an RF-based
#: fallback for other shapes.
_PUBLISHED_FILTERS_PER_SEGMENT = {11: 24, 5: 14, 3: 19}


@dataclass(frozen=True)
class ConvMapping:
    """Geometry and pass structure of one convolution on the array."""

    layer: str
    mapping_type: MappingType
    segment_rows: int          # filter height = rows per segment
    segments: int              # segments per set
    sets: int                  # parallel input-channel sets (Type III: 2)
    cols_used: int             # columns doing useful work per set
    filters_per_segment: int   # output channels resident per segment
    channel_split: int         # sequential input-channel splits (Type II)
    row_passes: int            # passes over output rows
    channel_passes: int        # passes over output channels
    active_pes: int            # row-granularity powered PEs
    compute_pes: int           # PEs doing MACs
    macs: int                  # total layer MACs

    @property
    def total_passes(self) -> int:
        """Sequential passes to complete the layer."""
        return self.row_passes * self.channel_passes * self.channel_split

    @property
    def output_channels_per_pass(self) -> int:
        """Output channels completed per (row, channel) pass."""
        return self.filters_per_segment * self.segments

    def ideal_cycles(self) -> int:
        """MAC-issue cycles assuming 1 sustained MAC/PE/cycle.

        The per-mapping-type efficiency factor that turns this into the
        Fig. 12 latency lives in :mod:`repro.perf.calibration` — smaller
        segments mean proportionally more partial-sum motion, which the
        ideal count does not capture.
        """
        return int(math.ceil(self.macs / max(self.compute_pes, 1)))


def _rf_fallback_filters(spec: ConvSpec, array: ArrayConfig, split: int) -> int:
    """RF-capacity estimate of filters per segment (non-paper shapes).

    Accounts one double-buffered filter row per resident filter next to
    one input row of the active channel split.
    """
    rf_words = array.pe.rf_words
    in_row = spec.in_width * max(spec.in_channels // split, 1)
    filter_row = 2 * spec.kernel * max(spec.in_channels // split, 1)
    available = rf_words - in_row
    if available <= 0 or filter_row <= 0:
        return 1
    return max(available // filter_row, 1)


def map_conv_layer(spec: ConvSpec, array: ArrayConfig = PAPER_ARRAY) -> ConvMapping:
    """Choose the Fig. 6 mapping for ``spec`` on ``array``."""
    fh = spec.kernel
    if fh > array.rows:
        raise ValueError(
            f"{spec.name}: filter height {fh} exceeds array rows {array.rows}"
        )
    segments_max = array.rows // fh

    # Does one filter row with all input channels fit in the RF next to
    # an input row?  (Type I test, Section IV.A.)
    rf_words = array.pe.rf_words
    needs_split = (spec.kernel * spec.in_channels + spec.in_width * spec.in_channels) > rf_words

    # Can two sets sit side by side in the columns?  (Type III test.)
    two_sets_fit = 2 * spec.out_width <= array.cols

    if not needs_split:
        mapping_type = MappingType.TYPE_I
        sets, split = 1, 1
        segments = segments_max
        cols_used = min(array.cols, spec.out_height)
        row_passes = math.ceil(spec.out_height / array.cols)
    elif two_sets_fit and segments_max >= 2:
        mapping_type = MappingType.TYPE_III
        sets, split = 2, 2
        segments = segments_max
        cols_used = spec.out_width
        row_passes = math.ceil(spec.out_height / spec.out_width)
        # The two sets process the two input-channel halves in parallel,
        # so the sequential split collapses back to 1.
        split = 1
    else:
        mapping_type = MappingType.TYPE_II
        sets = 1
        split = math.ceil(
            (spec.kernel * spec.in_channels + spec.in_width * spec.in_channels)
            / rf_words
        )
        segments = segments_max
        cols_used = min(spec.out_width, array.cols)
        row_passes = math.ceil(spec.out_height / cols_used)

    if spec.kernel in _PUBLISHED_FILTERS_PER_SEGMENT and spec.in_height in (227, 27, 13):
        filters_per_segment = _PUBLISHED_FILTERS_PER_SEGMENT[spec.kernel]
    else:
        filters_per_segment = _rf_fallback_filters(spec, array, max(split, sets))
    filters_per_segment = min(filters_per_segment, spec.out_channels)

    per_pass = filters_per_segment * segments
    # Final channel pass may be ragged (e.g. CONV2: 3 full passes of
    # 6 x 14 = 84 channels cover 252 of 256; a fourth pass finishes up).
    channel_passes = math.ceil(spec.out_channels / per_pass)

    used_rows = segments * fh * (sets if 2 * spec.out_width > array.cols else 1)
    used_rows = min(segments * fh, array.rows)
    active_pes = used_rows * array.cols
    compute_pes = segments * fh * cols_used * sets

    return ConvMapping(
        layer=spec.name,
        mapping_type=mapping_type,
        segment_rows=fh,
        segments=segments,
        sets=sets,
        cols_used=cols_used,
        filters_per_segment=filters_per_segment,
        channel_split=split,
        row_passes=row_passes,
        channel_passes=channel_passes,
        active_pes=active_pes,
        compute_pes=compute_pes,
        macs=spec.macs,
    )
