"""Processing element configuration and functional model.

Fig. 4b: each PE has a 4.5 KB register file, 8 MAC units, 8 comparators
(for ReLU and max-pool), 128-bit links to its four neighbours plus a
diagonal link to the upper-right PE, and runs at 1 GHz on 16-bit
fixed-point data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PEConfig", "ProcessingElement"]

_F64 = np.float64


@dataclass(frozen=True)
class PEConfig:
    """Static PE parameters.

    ``rf_words`` (register-file capacity in data words) and
    ``words_per_link_beat`` (data words moved per cycle over one
    inter-PE link) are derived once at construction — they sit on the
    oracle's innermost loops, so they are cached attributes rather than
    recomputed properties.
    """

    rf_bytes: int = 4608  # 4.5 KB
    n_macs: int = 8
    n_comparators: int = 8
    link_bits: int = 128
    word_bits: int = 16

    def __post_init__(self) -> None:
        if min(self.rf_bytes, self.n_macs, self.n_comparators, self.link_bits) <= 0:
            raise ValueError("PE parameters must be positive")
        if self.word_bits not in (8, 16, 32):
            raise ValueError("word_bits must be 8, 16 or 32")
        object.__setattr__(self, "rf_words", self.rf_bytes * 8 // self.word_bits)
        object.__setattr__(
            self, "words_per_link_beat", self.link_bits // self.word_bits
        )


class ProcessingElement:
    """Functional PE used as the cycle-level oracle.

    Holds a register file (filter row + input row + partial sums) and
    performs one row of 1-D convolution — the row-stationary primitive.
    The cycle accounting assumes one MAC issue per cycle sustained
    (the 8 MAC units hide RF banking and the 16-bit multiply pipeline;
    the sustained rate through one PE's row-conv loop is one result MAC
    per cycle, which is what the Fig. 12 calibration reflects).

    This loop-level model is the *oracle* behind the vectorised fast
    path (:mod:`repro.systolic.functional` with ``fidelity="fast"``):
    the fast path must reproduce its outputs and cycle counters exactly.
    Callers on a hot path should hand ``load_*`` float64 arrays so the
    dtype-conversion guard short-circuits.
    """

    def __init__(self, config: PEConfig | None = None):
        self.config = config or PEConfig()
        self.filter_row: np.ndarray | None = None
        self.input_row: np.ndarray | None = None
        self.psum: np.ndarray | None = None
        self.cycles = 0
        self.load_cycles = 0

    def load_filter_row(self, filter_row: np.ndarray) -> None:
        """Store one row of filter taps in the RF.

        Charges one *load* cycle — the taps arrive broadside from the
        global buffer, one row per cycle, exactly like one row of an FC
        weight tile.  Loads are tracked separately from MAC cycles
        (:attr:`load_cycles`) because they amortise differently: a
        resident filter row serves every image of a batch, so the
        schedule charges loads once per batch while MAC/drain charges
        repeat per image (the conv side of the Fig. 13 weight-reuse
        effect).
        """
        if type(filter_row) is not np.ndarray or filter_row.dtype != _F64:
            filter_row = np.asarray(filter_row, dtype=_F64)
        self._check_rf(filter_row.size + (0 if self.input_row is None else self.input_row.size))
        self.filter_row = filter_row
        self.load_cycles += 1

    def load_input_row(self, input_row: np.ndarray) -> None:
        """Store one row of input activations in the RF."""
        if type(input_row) is not np.ndarray or input_row.dtype != _F64:
            input_row = np.asarray(input_row, dtype=_F64)
        self._check_rf(input_row.size + (0 if self.filter_row is None else self.filter_row.size))
        self.input_row = input_row

    def _check_rf(self, words: int) -> None:
        if words > self.config.rf_words:
            raise ValueError(
                f"RF overflow: {words} words > capacity {self.config.rf_words}"
            )

    def row_conv(self, stride: int = 1) -> np.ndarray:
        """1-D valid convolution of the stored input row with the filter
        row, producing one row of partial sums.  Charges one cycle per
        MAC performed (``out_len * taps``, the sustained per-PE rate);
        the windows-by-taps product itself is one strided BLAS call
        over a zero-copy sliding-window view."""
        if self.filter_row is None or self.input_row is None:
            raise RuntimeError("load filter and input rows first")
        flt = self.filter_row
        inp = self.input_row
        taps = flt.size
        width = inp.size
        out_len = (width - taps) // stride + 1
        if out_len <= 0:
            raise ValueError("input row shorter than filter row")
        windows = np.lib.stride_tricks.as_strided(
            inp,
            shape=(out_len, taps),
            strides=(inp.strides[0] * stride, inp.strides[0]),
        )
        out = windows @ flt
        self.cycles += out_len * taps
        self.psum = out if self.psum is None else self.psum + out
        return out

    def accumulate(self, incoming: np.ndarray) -> np.ndarray:
        """Add a neighbour PE's partial sums into the local psum."""
        if self.psum is None:
            self.psum = np.asarray(incoming, dtype=_F64).copy()
        else:
            if incoming.shape != self.psum.shape:
                raise ValueError("psum shape mismatch")
            self.psum = self.psum + incoming
        beats = -(-self.psum.size // self.config.words_per_link_beat)
        self.cycles += beats
        return self.psum

    def relu(self, values: np.ndarray) -> np.ndarray:
        """Comparator-unit ReLU; charges cycles at 8 comparisons/cycle."""
        self.cycles += -(-values.size // self.config.n_comparators)
        return np.maximum(values, 0.0)

    def clear_psum(self) -> None:
        """Drop accumulated partial sums, keeping the resident filter
        row (row-stationary reuse between output rows)."""
        self.psum = None

    def clear(self) -> None:
        """Reset state between passes (keeps the cycle counter)."""
        self.filter_row = None
        self.input_row = None
        self.psum = None
