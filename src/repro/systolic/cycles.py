"""Closed-form cycle accounting for the functional systolic simulators.

The loop-level oracle (:class:`repro.systolic.pe.ProcessingElement`
driven by :class:`repro.systolic.functional.FunctionalSystolicArray`)
charges cycles as it executes: ``out_len * taps`` MACs per row
convolution, one drain wavefront per column pass, link-beat psum moves
and comparator ReLUs.  Every one of those charges is a pure function of
the layer geometry, so the fast path does not need to execute the loop
to know what it would have charged — the formulas here reproduce the
oracle's counters *exactly* (integer equality, asserted over a
property-tested shape grid in ``tests/test_systolic_fast_equivalence.py``).

Derivation, matching the oracle loop structure:

* MAC cycles — the oracle iterates ``oc x oh x c x kh`` row
  convolutions, each charging ``ow * kw``:
  ``total = oc * oh * c * kh * ow * kw`` (= MACs of the layer).
* Wavefront cycles — one drain per column pass of each output channel.
  A pass occupying ``q`` columns charges ``kh + ow + q - 1``: ``kh``
  cycles for the wavefront to flow down the segment, ``ow`` to stream
  the row out, and one extra cycle of stagger per additional occupied
  column (partially-filled final passes occupy ``oh mod cols`` columns
  and charge less — see the occupancy fix in ``FunctionalSystolicArray``).
* FC tiles — the tile schedule of Figs. 7/8 charges ``tile.size`` MACs
  and ``tile_rows + tile_cols`` drain per tile; summed in closed form
  over the ragged tile grid.
* FC tile *loads* — streaming an ``r x c`` weight tile into the array
  costs ``r`` cycles (one broadside row per cycle).  A batch of vectors
  reuses the resident tile: loads are charged once per tile-batch, not
  per sample, which is the Fig. 13 fps-vs-batch effect — cycles per
  sample strictly decrease as the batch grows.
* Conv filter-row *loads* — each ``load_filter_row`` into a PE is one
  broadside cycle, so a pass over ``c`` channels with a ``kh``-row
  segment charges ``c * kh`` loads, once per column pass of each output
  channel.  Filter rows stay resident while the whole batch streams
  through the pass (the conv side of the same weight-reuse effect), so
  conv loads, like FC tile loads, are charged once per batch.
* Training backward passes — Section V.B maps both backward GEMMs of a
  conv layer onto the FC tile schedule after the im2col expansion, and
  an FC layer's backward is the Fig. 8 transposed pass (dX) plus a
  streamed outer product (dW); :func:`fc_backward_stats`,
  :func:`fc_weight_grad_stats` and :func:`conv_backward_gemm_stats`
  express all of them as :func:`fc_tile_stats` geometries.

A batch of ``n`` images/vectors repeats the MAC/drain schedule ``n``
times (those counters scale linearly with the batch); FC tile loads and
conv filter-row loads are amortised across the batch as above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.memo import memoised
from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = [
    "SimulationStats",
    "FCScheduleStats",
    "ConvBackwardStats",
    "conv_rowstationary_stats",
    "fc_tile_stats",
    "fc_backward_stats",
    "fc_weight_grad_stats",
    "conv_backward_gemm_stats",
]


@dataclass(frozen=True)
class SimulationStats:
    """Cycle and occupancy statistics of one simulated conv layer.

    ``load_cycles`` counts filter-row loads into the segment — charged
    once per batch (rows stay resident while every image streams
    through); ``total_pe_cycles`` and ``wavefront_cycles`` repeat per
    image.
    """

    total_pe_cycles: int
    wavefront_cycles: int
    pes_used: int
    load_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        """Load + MAC + drain cycles of the simulated schedule."""
        return self.total_pe_cycles + self.wavefront_cycles + self.load_cycles


@dataclass(frozen=True)
class FCScheduleStats:
    """Tile-schedule statistics of one FC pass (either direction).

    ``tiles`` and ``load_cycles`` count distinct weight tiles streamed
    into the array — charged once per batch (weight reuse); ``mac_cycles``
    and ``drain_cycles`` repeat per sample.
    """

    tiles: int
    mac_cycles: int
    drain_cycles: int
    load_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        """Load + MAC + drain cycles of the schedule."""
        return self.load_cycles + self.mac_cycles + self.drain_cycles


@memoised("conv_rowstationary_stats")
def conv_rowstationary_stats(
    channels: int,
    height: int,
    width: int,
    out_channels: int,
    kh: int,
    kw: int,
    stride: int = 1,
    config: ArrayConfig = PAPER_ARRAY,
    batch: int = 1,
) -> SimulationStats:
    """Closed-form counters for a row-stationary convolution.

    ``height``/``width`` are the *padded* input extents (pad before
    calling, exactly as the oracle does).  Equal, field for field, to
    the counters the PE-loop oracle accumulates for the same geometry.

    Memoised on the full geometry signature (every argument is
    hashable, the result is frozen): hot loops ask for the same layer
    at the same batch size every update.
    """
    oh = (height - kh) // stride + 1
    ow = (width - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError("filter larger than input")
    cols = config.cols
    mac_cycles = out_channels * oh * channels * kh * ow * kw
    full_passes, remainder = divmod(oh, cols)
    wavefront = full_passes * (kh + ow + cols - 1)
    if remainder:
        wavefront += kh + ow + remainder - 1
    wavefront *= out_channels
    # Filter-row loads: each column pass re-loads the segment once per
    # channel (kh broadside rows), and the rows then stay resident while
    # the whole batch streams through — loads do not scale with `batch`.
    passes = full_passes + (1 if remainder else 0)
    loads = out_channels * passes * channels * kh
    return SimulationStats(
        total_pe_cycles=batch * mac_cycles,
        wavefront_cycles=batch * wavefront,
        pes_used=kh * min(cols, oh),
        load_cycles=loads,
    )


@memoised("fc_tile_stats")
def fc_tile_stats(
    in_features: int,
    out_features: int,
    array: ArrayConfig = PAPER_ARRAY,
    batch: int = 1,
) -> FCScheduleStats:
    """Closed-form counters for the Fig. 7/8 FC tile schedule.

    Memoised on the geometry signature (the backward variants delegate
    here, so they share the table).

    Both directions stream the same (in_features x out_features) tile
    grid, so forward and transposed-backward share these numbers.  Each
    weight tile is loaded into the array once and stays resident while
    the whole batch streams through it (one broadside row per cycle, so
    an ``r x c`` tile costs ``r`` load cycles); MAC and drain cycles
    repeat per sample.
    """
    row_tiles = -(-in_features // array.rows)
    col_tiles = -(-out_features // array.cols)
    return FCScheduleStats(
        tiles=row_tiles * col_tiles,
        mac_cycles=batch * in_features * out_features,
        drain_cycles=batch * (in_features * col_tiles + out_features * row_tiles),
        load_cycles=in_features * col_tiles,
    )


def fc_backward_stats(
    in_features: int,
    out_features: int,
    array: ArrayConfig = PAPER_ARRAY,
    batch: int = 1,
) -> FCScheduleStats:
    """Counters of the Fig. 8 transposed pass ``dout @ W.T`` (dL/dX).

    The backward direction streams the *same* ``(in_features x
    out_features)`` tile grid as the forward pass — the Fig. 8 trick is
    precisely that one resident weight tile serves both directions — so
    the counters are :func:`fc_tile_stats` unchanged.  Provided as a
    named alias so training-step accounting reads as the paper's
    dataflow rather than a coincidence of formulas.
    """
    return fc_tile_stats(in_features, out_features, array, batch=batch)


def fc_weight_grad_stats(
    in_features: int,
    out_features: int,
    array: ArrayConfig = PAPER_ARRAY,
    batch: int = 1,
) -> FCScheduleStats:
    """Counters of the weight-gradient product ``dW = x.T @ dout``.

    Row ``i`` of ``dW`` is the length-``batch`` activation column
    ``x[:, i]`` streamed through the resident ``(batch x out_features)``
    upstream-gradient tiles — a Fig. 7 forward pass whose stationary
    matrix is the gradient and whose "batch" is the ``in_features``
    activation columns.  The gradient tiles change every training step,
    so their loads are charged per step (they still amortise across the
    ``in_features`` streamed vectors).
    """
    return fc_tile_stats(batch, out_features, array, batch=in_features)


@dataclass(frozen=True)
class ConvBackwardStats:
    """Closed-form counters of one conv layer's GEMM backpropagation.

    Section V.B: after the im2col expansion, "the backpropagation of
    CONV becomes same as the backpropagation of FC layers" — so both
    gradient products are FC tile schedules over the expanded operands:

    * ``dx`` — the Fig. 8 transposed pass of the ``(F x OC)`` filter
      matrix against the ``batch * positions`` upstream-gradient rows
      (``F = C*KH*KW``), folded back with col2im on the vector units;
    * ``dw`` — the streamed outer product of the expansion against the
      gradient: each of the ``F`` expansion columns (one length-``K``
      vector, ``K = batch * positions``) streams through the resident
      ``(K x OC)`` gradient tiles.

    ``expansion_elements`` counts the im2col matrix the logic die must
    materialise (the data-movement charge of
    :mod:`repro.systolic.gemm_backward`).
    """

    dw: FCScheduleStats
    dx: FCScheduleStats
    expansion_elements: int

    @property
    def total_cycles(self) -> int:
        """dW + dX cycles of the layer's backward schedules."""
        return self.dw.total_cycles + self.dx.total_cycles

    @property
    def mac_cycles(self) -> int:
        """dW + dX multiply-accumulates."""
        return self.dw.mac_cycles + self.dx.mac_cycles


def conv_backward_gemm_stats(
    channels: int,
    height: int,
    width: int,
    out_channels: int,
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
    config: ArrayConfig = PAPER_ARRAY,
    batch: int = 1,
) -> ConvBackwardStats:
    """Closed-form counters for a conv layer's backward GEMMs.

    ``height``/``width`` are the *unpadded* input extents with ``pad``
    given explicitly (matching :func:`~repro.systolic.gemm_backward.
    conv_backward_gemm`, which pads inside the expansion — unlike the
    forward :func:`conv_rowstationary_stats`, which takes pre-padded
    extents because the forward array streams padded rows).
    """
    oh = (height + 2 * pad - kh) // stride + 1
    ow = (width + 2 * pad - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError("filter larger than input")
    positions = oh * ow
    k_dim = batch * positions
    f_dim = channels * kh * kw
    return ConvBackwardStats(
        dw=fc_weight_grad_stats(f_dim, out_channels, config, batch=k_dim),
        dx=fc_backward_stats(f_dim, out_channels, config, batch=k_dim),
        expansion_elements=batch * f_dim * positions,
    )
