"""Closed-form cycle accounting for the functional systolic simulators.

The loop-level oracle (:class:`repro.systolic.pe.ProcessingElement`
driven by :class:`repro.systolic.functional.FunctionalSystolicArray`)
charges cycles as it executes: ``out_len * taps`` MACs per row
convolution, one drain wavefront per column pass, link-beat psum moves
and comparator ReLUs.  Every one of those charges is a pure function of
the layer geometry, so the fast path does not need to execute the loop
to know what it would have charged — the formulas here reproduce the
oracle's counters *exactly* (integer equality, asserted over a
property-tested shape grid in ``tests/test_systolic_fast_equivalence.py``).

Derivation, matching the oracle loop structure:

* MAC cycles — the oracle iterates ``oc x oh x c x kh`` row
  convolutions, each charging ``ow * kw``:
  ``total = oc * oh * c * kh * ow * kw`` (= MACs of the layer).
* Wavefront cycles — one drain per column pass of each output channel.
  A pass occupying ``q`` columns charges ``kh + ow + q - 1``: ``kh``
  cycles for the wavefront to flow down the segment, ``ow`` to stream
  the row out, and one extra cycle of stagger per additional occupied
  column (partially-filled final passes occupy ``oh mod cols`` columns
  and charge less — see the occupancy fix in ``FunctionalSystolicArray``).
* FC tiles — the tile schedule of Figs. 7/8 charges ``tile.size`` MACs
  and ``tile_rows + tile_cols`` drain per tile; summed in closed form
  over the ragged tile grid.

A batch of ``n`` images/vectors repeats the schedule ``n`` times, so
every counter scales linearly with the batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = [
    "SimulationStats",
    "FCScheduleStats",
    "conv_rowstationary_stats",
    "fc_tile_stats",
]


@dataclass(frozen=True)
class SimulationStats:
    """Cycle and occupancy statistics of one simulated conv layer."""

    total_pe_cycles: int
    wavefront_cycles: int
    pes_used: int

    @property
    def total_cycles(self) -> int:
        """MAC plus drain cycles of the simulated schedule."""
        return self.total_pe_cycles + self.wavefront_cycles


@dataclass(frozen=True)
class FCScheduleStats:
    """Tile-schedule statistics of one FC pass (either direction)."""

    tiles: int
    mac_cycles: int
    drain_cycles: int


def conv_rowstationary_stats(
    channels: int,
    height: int,
    width: int,
    out_channels: int,
    kh: int,
    kw: int,
    stride: int = 1,
    config: ArrayConfig = PAPER_ARRAY,
    batch: int = 1,
) -> SimulationStats:
    """Closed-form counters for a row-stationary convolution.

    ``height``/``width`` are the *padded* input extents (pad before
    calling, exactly as the oracle does).  Equal, field for field, to
    the counters the PE-loop oracle accumulates for the same geometry.
    """
    oh = (height - kh) // stride + 1
    ow = (width - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError("filter larger than input")
    cols = config.cols
    mac_cycles = out_channels * oh * channels * kh * ow * kw
    full_passes, remainder = divmod(oh, cols)
    wavefront = full_passes * (kh + ow + cols - 1)
    if remainder:
        wavefront += kh + ow + remainder - 1
    wavefront *= out_channels
    return SimulationStats(
        total_pe_cycles=batch * mac_cycles,
        wavefront_cycles=batch * wavefront,
        pes_used=kh * min(cols, oh),
    )


def fc_tile_stats(
    in_features: int,
    out_features: int,
    array: ArrayConfig = PAPER_ARRAY,
    batch: int = 1,
) -> FCScheduleStats:
    """Closed-form counters for the Fig. 7/8 FC tile schedule.

    Both directions stream the same (in_features x out_features) tile
    grid, so forward and transposed-backward share these numbers.
    """
    row_tiles = -(-in_features // array.rows)
    col_tiles = -(-out_features // array.cols)
    return FCScheduleStats(
        tiles=batch * row_tiles * col_tiles,
        mac_cycles=batch * in_features * out_features,
        drain_cycles=batch * (in_features * col_tiles + out_features * row_tiles),
    )
