"""Closed-form cycle accounting for the functional systolic simulators.

The loop-level oracle (:class:`repro.systolic.pe.ProcessingElement`
driven by :class:`repro.systolic.functional.FunctionalSystolicArray`)
charges cycles as it executes: ``out_len * taps`` MACs per row
convolution, one drain wavefront per column pass, link-beat psum moves
and comparator ReLUs.  Every one of those charges is a pure function of
the layer geometry, so the fast path does not need to execute the loop
to know what it would have charged — the formulas here reproduce the
oracle's counters *exactly* (integer equality, asserted over a
property-tested shape grid in ``tests/test_systolic_fast_equivalence.py``).

Derivation, matching the oracle loop structure:

* MAC cycles — the oracle iterates ``oc x oh x c x kh`` row
  convolutions, each charging ``ow * kw``:
  ``total = oc * oh * c * kh * ow * kw`` (= MACs of the layer).
* Wavefront cycles — one drain per column pass of each output channel.
  A pass occupying ``q`` columns charges ``kh + ow + q - 1``: ``kh``
  cycles for the wavefront to flow down the segment, ``ow`` to stream
  the row out, and one extra cycle of stagger per additional occupied
  column (partially-filled final passes occupy ``oh mod cols`` columns
  and charge less — see the occupancy fix in ``FunctionalSystolicArray``).
* FC tiles — the tile schedule of Figs. 7/8 charges ``tile.size`` MACs
  and ``tile_rows + tile_cols`` drain per tile; summed in closed form
  over the ragged tile grid.
* FC tile *loads* — streaming an ``r x c`` weight tile into the array
  costs ``r`` cycles (one broadside row per cycle).  A batch of vectors
  reuses the resident tile: loads are charged once per tile-batch, not
  per sample, which is the Fig. 13 fps-vs-batch effect — cycles per
  sample strictly decrease as the batch grows.

A batch of ``n`` images/vectors repeats the MAC/drain schedule ``n``
times (those counters scale linearly with the batch); FC weight loads
are amortised across the batch as above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = [
    "SimulationStats",
    "FCScheduleStats",
    "conv_rowstationary_stats",
    "fc_tile_stats",
]


@dataclass(frozen=True)
class SimulationStats:
    """Cycle and occupancy statistics of one simulated conv layer."""

    total_pe_cycles: int
    wavefront_cycles: int
    pes_used: int

    @property
    def total_cycles(self) -> int:
        """MAC plus drain cycles of the simulated schedule."""
        return self.total_pe_cycles + self.wavefront_cycles


@dataclass(frozen=True)
class FCScheduleStats:
    """Tile-schedule statistics of one FC pass (either direction).

    ``tiles`` and ``load_cycles`` count distinct weight tiles streamed
    into the array — charged once per batch (weight reuse); ``mac_cycles``
    and ``drain_cycles`` repeat per sample.
    """

    tiles: int
    mac_cycles: int
    drain_cycles: int
    load_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        """Load + MAC + drain cycles of the schedule."""
        return self.load_cycles + self.mac_cycles + self.drain_cycles


def conv_rowstationary_stats(
    channels: int,
    height: int,
    width: int,
    out_channels: int,
    kh: int,
    kw: int,
    stride: int = 1,
    config: ArrayConfig = PAPER_ARRAY,
    batch: int = 1,
) -> SimulationStats:
    """Closed-form counters for a row-stationary convolution.

    ``height``/``width`` are the *padded* input extents (pad before
    calling, exactly as the oracle does).  Equal, field for field, to
    the counters the PE-loop oracle accumulates for the same geometry.
    """
    oh = (height - kh) // stride + 1
    ow = (width - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError("filter larger than input")
    cols = config.cols
    mac_cycles = out_channels * oh * channels * kh * ow * kw
    full_passes, remainder = divmod(oh, cols)
    wavefront = full_passes * (kh + ow + cols - 1)
    if remainder:
        wavefront += kh + ow + remainder - 1
    wavefront *= out_channels
    return SimulationStats(
        total_pe_cycles=batch * mac_cycles,
        wavefront_cycles=batch * wavefront,
        pes_used=kh * min(cols, oh),
    )


def fc_tile_stats(
    in_features: int,
    out_features: int,
    array: ArrayConfig = PAPER_ARRAY,
    batch: int = 1,
) -> FCScheduleStats:
    """Closed-form counters for the Fig. 7/8 FC tile schedule.

    Both directions stream the same (in_features x out_features) tile
    grid, so forward and transposed-backward share these numbers.  Each
    weight tile is loaded into the array once and stays resident while
    the whole batch streams through it (one broadside row per cycle, so
    an ``r x c`` tile costs ``r`` load cycles); MAC and drain cycles
    repeat per sample.
    """
    row_tiles = -(-in_features // array.rows)
    col_tiles = -(-out_features // array.cols)
    return FCScheduleStats(
        tiles=row_tiles * col_tiles,
        mac_cycles=batch * in_features * out_features,
        drain_cycles=batch * (in_features * col_tiles + out_features * row_tiles),
        load_cycles=in_features * col_tiles,
    )
