"""PE-array configuration (Fig. 4b)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.systolic.pe import PEConfig

__all__ = ["ArrayConfig", "PAPER_ARRAY"]


@dataclass(frozen=True)
class ArrayConfig:
    """Static parameters of the systolic array and its buffer port.

    The paper: 1024 PEs in a 32x32 grid at 1 GHz; the global buffer has
    4096 connections to the 32 PEs of the first row (one 128-bit lane per
    column) and can broadcast a row of data to every PE row.
    """

    rows: int = 32
    cols: int = 32
    clock_hz: float = 1e9
    buffer_port_bits: int = 4096
    stream_bits_per_cycle: int = 128
    pe: PEConfig = PEConfig()

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.buffer_port_bits <= 0 or self.stream_bits_per_cycle <= 0:
            raise ValueError("port widths must be positive")

    @property
    def total_pes(self) -> int:
        """Number of PEs in the array."""
        return self.rows * self.cols

    @property
    def words_per_stream_cycle(self) -> int:
        """Data words entering the array per cycle on the streaming port.

        This 128-bit/cycle weight-streaming path is what bounds FC-layer
        throughput in Fig. 12a (~7-8 GMAC/s for every FC layer).
        """
        return self.stream_bits_per_cycle // self.pe.word_bits

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        return cycles / self.clock_hz


#: The paper's array: 32x32 PEs, 1 GHz, 16-bit, 4.5 KB RFs.
PAPER_ARRAY = ArrayConfig()
