"""Fully connected layer mapping (Figs. 7 and 8).

Forward (Fig. 7): the weight matrix is tiled over the PE array; the
input vector propagates row-wise, each PE multiplies, and partial sums
accumulate vertically into the first row.  The sustained bottleneck is
streaming the weight matrix into the array — 128 bits (8 words) per
cycle — which Fig. 12a confirms: every FC layer runs at ~7-8 GMAC/s
regardless of size.

Backward (Fig. 8): the vector propagates column-wise and partial sums
accumulate row-wise, giving the vector-*transposed*-matrix product
without materialising a transpose.  Backprop makes two such passes per
layer (one for the input gradient, one for the weight gradient), plus
staging/spill passes resolved by the performance model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.nn.specs import FCSpec
from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = ["FCMapping", "map_fc_layer"]


@dataclass(frozen=True)
class FCMapping:
    """Tile structure of one FC layer on the array."""

    layer: str
    in_features: int
    out_features: int
    row_tiles: int       # tiles along the input dimension
    col_tiles: int       # tiles along the output dimension
    active_pes: int      # PEs holding weights in a full tile
    macs: int
    weight_bits: int

    @property
    def total_tiles(self) -> int:
        """Weight-matrix tiles processed sequentially."""
        return self.row_tiles * self.col_tiles

    def stream_cycles(self, array: ArrayConfig = PAPER_ARRAY) -> int:
        """Cycles to stream the weight matrix through the array port.

        This is the FC throughput bound: weights/8 cycles at 16-bit data
        on the 128-bit streaming path.
        """
        return int(math.ceil(self.weight_bits / array.stream_bits_per_cycle))

    def fill_drain_cycles(self, array: ArrayConfig = PAPER_ARRAY) -> int:
        """Vector fill + psum drain overhead, once per tile wavefront."""
        per_tile = array.rows + array.cols
        return self.total_tiles * per_tile


def map_fc_layer(
    spec: FCSpec, array: ArrayConfig = PAPER_ARRAY, word_bits: int = 16
) -> FCMapping:
    """Tile ``spec``'s weight matrix over ``array``."""
    row_tiles = math.ceil(spec.in_features / array.rows)
    col_tiles = math.ceil(spec.out_features / array.cols)
    # A full tile occupies the whole array; the last tiles may be ragged.
    rows_used = min(spec.in_features, array.rows)
    cols_used = min(spec.out_features, array.cols)
    active = rows_used * array.cols if cols_used == array.cols else rows_used * cols_used
    # The paper reports FC1..FC4 at 1024 active PEs and FC5 (1024x5) at
    # 160: a ragged final tile powers rows x out_features PEs.
    if spec.out_features < array.cols:
        active = rows_used * spec.out_features
    else:
        active = array.rows * array.cols
    return FCMapping(
        layer=spec.name,
        in_features=spec.in_features,
        out_features=spec.out_features,
        row_tiles=row_tiles,
        col_tiles=col_tiles,
        active_pes=active,
        macs=spec.macs,
        weight_bits=spec.weight_count * word_bits,
    )
