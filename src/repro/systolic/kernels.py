"""Batched NumPy compute kernels shared by the systolic simulators and
:mod:`repro.nn.layers`.

One implementation of the im2col/GEMM idiom serves every consumer: the
functional systolic fast path (:mod:`repro.systolic.functional`), the
GEMM convolution backprop (:mod:`repro.systolic.gemm_backward`) and the
NumPy training layers (:mod:`repro.nn.layers`).  ``im2col`` builds the
unfolded matrix from a stride-tricks sliding-window view — no Python
loop over kernel taps — and every product is a single (batched) BLAS
call via ``np.matmul``/``np.tensordot``.

This module deliberately imports nothing but NumPy so it can sit at the
bottom of the dependency graph (``repro.nn`` and ``repro.systolic``
both import it without cycles).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_out_size",
    "im2col",
    "col2im",
    "conv2d_gemm",
    "fc_forward_gemm",
    "fc_backward_gemm",
]


def conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output extent of a convolution along one spatial axis."""
    return (size + 2 * pad - kernel) // stride + 1


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into columns (N, C*kh*kw, OH*OW).

    Built from a zero-copy sliding-window view; the only data movement
    is the final reshape into the GEMM-ready layout.
    """
    n, c, h, w = x.shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, OH, OW, KH, KW)
    return np.ascontiguousarray(windows.transpose(0, 1, 4, 5, 2, 3)).reshape(
        n, c * kh * kw, oh * ow
    )


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold columns back into an image, summing overlapping windows.

    The scatter-add over overlapping windows cannot be expressed as a
    strided view, so this stays a (kh x kw)-step loop of vectorised
    strided adds — each step touches OH*OW elements at once.
    """
    n, c, h, w = x_shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d_gemm(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Batched convolution forward: im2col + one broadcast GEMM.

    ``x`` is (N, C, H, W), ``weights`` (OC, C, KH, KW); returns
    (N, OC, OH, OW).  ``np.matmul`` broadcasts the (OC, F) filter matrix
    against the (N, F, P) column stack, so the whole batch is one BLAS
    dispatch.  (Bias handling stays with the callers: the systolic model
    drains bias-free partial sums, and ``Conv2D`` adds its bias onto the
    same GEMM while keeping ``cols`` for its training cache.)
    """
    n = x.shape[0]
    oc, _, kh, kw = weights.shape
    oh = conv_out_size(x.shape[2], kh, stride, pad)
    ow = conv_out_size(x.shape[3], kw, stride, pad)
    cols = im2col(x, kh, kw, stride, pad)
    out = np.matmul(weights.reshape(oc, -1), cols)  # (N, OC, OH*OW)
    return out.reshape(n, oc, oh, ow)


def fc_forward_gemm(vectors: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """FC forward product ``v @ M`` for one vector (I,) or a batch (B, I)."""
    return vectors @ matrix


def fc_backward_gemm(vectors: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """FC transposed product ``v @ M.T`` without materialising ``M.T``
    (the BLAS call reads ``M`` with swapped strides, which is exactly
    the Fig. 8 trick in software form)."""
    return vectors @ matrix.T
