"""Systolic PE-array model (Fig. 4b, Fig. 6–8).

The paper's accelerator is a 32x32 array of processing elements, each
with a 4.5 KB register file, 8 MACs and 8 comparators, fed by a global
SRAM buffer (row-stationary dataflow after Eyeriss).  This package
provides:

* the array/PE configuration dataclasses,
* the three convolution mapping schemes of Fig. 6 (Type I/II/III) with
  their segment/set geometry and active-PE counts,
* the FC forward (vector-matrix, Fig. 7) and backward
  (vector-transposed-matrix, Fig. 8) mappings,
* a functional systolic simulator with a ``fidelity`` switch: the
  default ``"fast"`` path computes layer numerics with shared batched
  im2col/GEMM kernels (:mod:`repro.systolic.kernels`) and cycle
  statistics in closed form (:mod:`repro.systolic.cycles`), running
  paper-scale layers and whole batches in one call; ``"pe"`` retains
  the loop-level per-PE oracle the fast path is proven against.  FC
  weight tiles stay resident while a batch streams through, so their
  load cycles amortise across the batch (the Fig. 13 fps-vs-batch
  weight-reuse effect) at both fidelities,
* a throughput benchmark harness (:mod:`repro.systolic.bench`) backing
  ``python -m repro systolic-bench``.
"""

from repro.systolic.pe import PEConfig, ProcessingElement
from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.kernels import (
    conv_out_size,
    im2col,
    col2im,
    conv2d_gemm,
)
from repro.systolic.cycles import (
    SimulationStats,
    FCScheduleStats,
    ConvBackwardStats,
    conv_rowstationary_stats,
    fc_tile_stats,
    fc_backward_stats,
    fc_weight_grad_stats,
    conv_backward_gemm_stats,
)
from repro.systolic.conv_mapping import (
    MappingType,
    ConvMapping,
    map_conv_layer,
)
from repro.systolic.fc_mapping import FCMapping, map_fc_layer
from repro.systolic.functional import (
    FIDELITIES,
    FunctionalSystolicArray,
    simulate_conv_rowstationary,
)
from repro.systolic.fc_functional import (
    FCSimResult,
    simulate_fc_forward,
    simulate_fc_backward_transposed,
)
from repro.systolic.gemm_backward import GemmBackwardResult, conv_backward_gemm
from repro.systolic.schedule import ArrayPass, ConvSchedule, build_conv_schedule
from repro.systolic.noc import (
    NOC_TOPOLOGIES,
    CommunicationCost,
    NocModel,
    analyze_conv_communication,
)
from repro.systolic.bench import (
    ConvBenchResult,
    NetworkForwardResult,
    bench_conv_fast_vs_pe,
    simulate_network_forward,
)
from repro.systolic.training import (
    LayerTrainingCost,
    TrainingStepCost,
    TrainingStepResult,
    TrainingBenchResult,
    training_step_stats,
    network_training_step_cost,
    simulate_network_training_step,
    bench_training_fast_vs_pe,
)

__all__ = [
    "PEConfig",
    "ProcessingElement",
    "ArrayConfig",
    "PAPER_ARRAY",
    "conv_out_size",
    "im2col",
    "col2im",
    "conv2d_gemm",
    "SimulationStats",
    "FCScheduleStats",
    "conv_rowstationary_stats",
    "fc_tile_stats",
    "MappingType",
    "ConvMapping",
    "map_conv_layer",
    "FCMapping",
    "map_fc_layer",
    "FIDELITIES",
    "FunctionalSystolicArray",
    "simulate_conv_rowstationary",
    "FCSimResult",
    "simulate_fc_forward",
    "simulate_fc_backward_transposed",
    "GemmBackwardResult",
    "conv_backward_gemm",
    "ArrayPass",
    "ConvSchedule",
    "build_conv_schedule",
    "CommunicationCost",
    "NocModel",
    "NOC_TOPOLOGIES",
    "analyze_conv_communication",
    "ConvBenchResult",
    "NetworkForwardResult",
    "bench_conv_fast_vs_pe",
    "simulate_network_forward",
    "ConvBackwardStats",
    "fc_backward_stats",
    "fc_weight_grad_stats",
    "conv_backward_gemm_stats",
    "LayerTrainingCost",
    "TrainingStepCost",
    "TrainingStepResult",
    "TrainingBenchResult",
    "training_step_stats",
    "network_training_step_cost",
    "simulate_network_training_step",
    "bench_training_fast_vs_pe",
]
