"""Systolic PE-array model (Fig. 4b, Fig. 6–8).

The paper's accelerator is a 32x32 array of processing elements, each
with a 4.5 KB register file, 8 MACs and 8 comparators, fed by a global
SRAM buffer (row-stationary dataflow after Eyeriss).  This package
provides:

* the array/PE configuration dataclasses,
* the three convolution mapping schemes of Fig. 6 (Type I/II/III) with
  their segment/set geometry and active-PE counts,
* the FC forward (vector-matrix, Fig. 7) and backward
  (vector-transposed-matrix, Fig. 8) mappings,
* a small *functional* systolic simulator that executes a convolution
  cycle-by-cycle at the PE level and is validated against NumPy — the
  evidence that the mapping geometry actually computes the right thing.
"""

from repro.systolic.pe import PEConfig, ProcessingElement
from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.conv_mapping import (
    MappingType,
    ConvMapping,
    map_conv_layer,
)
from repro.systolic.fc_mapping import FCMapping, map_fc_layer
from repro.systolic.functional import FunctionalSystolicArray, simulate_conv_rowstationary
from repro.systolic.fc_functional import (
    FCSimResult,
    simulate_fc_forward,
    simulate_fc_backward_transposed,
)
from repro.systolic.gemm_backward import GemmBackwardResult, conv_backward_gemm
from repro.systolic.schedule import ArrayPass, ConvSchedule, build_conv_schedule
from repro.systolic.noc import CommunicationCost, analyze_conv_communication

__all__ = [
    "PEConfig",
    "ProcessingElement",
    "ArrayConfig",
    "PAPER_ARRAY",
    "MappingType",
    "ConvMapping",
    "map_conv_layer",
    "FCMapping",
    "map_fc_layer",
    "FunctionalSystolicArray",
    "simulate_conv_rowstationary",
    "FCSimResult",
    "simulate_fc_forward",
    "simulate_fc_backward_transposed",
    "GemmBackwardResult",
    "conv_backward_gemm",
    "ArrayPass",
    "ConvSchedule",
    "build_conv_schedule",
    "CommunicationCost",
    "analyze_conv_communication",
]
