"""Functional simulation of the FC dataflows (Figs. 7 and 8).

Fig. 7: forward vector-matrix product — matrix tiles are loaded into the
array, the input vector propagates row-wise, partial sums accumulate
vertically (column-wise) into the first row.

Fig. 8: backward vector-*transposed*-matrix product — the vector
propagates column-wise and partial sums accumulate row-wise, computing
``v @ W.T`` without materialising the transpose.  This is the trick that
lets the same weight tile serve both directions.

Both directions offer two fidelities.  ``fidelity="fast"`` (default)
computes the product as one BLAS GEMM (:mod:`repro.systolic.kernels`)
with the tile/MAC/drain counters from the closed-form schedule model
(:mod:`repro.systolic.cycles`) — paper-scale FC layers (37.75M weights)
cost milliseconds.  ``fidelity="pe"`` executes the tile schedule
explicitly (per-tile loads, per-lane dot products, wavefront drains) and
is the oracle the fast path is proven against.  A batch of vectors
(B, I) streams through each *resident* weight tile: tile loads are
charged once per batch (the Fig. 13 weight-reuse effect), while MAC and
drain counters repeat per vector.

These simulators ground the FC pass-count model of
:mod:`repro.perf.layer_cost`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.cycles import fc_tile_stats
from repro.systolic.functional import check_fidelity
from repro.systolic.kernels import fc_backward_gemm, fc_forward_gemm

__all__ = ["FCSimResult", "simulate_fc_forward", "simulate_fc_backward_transposed"]


@dataclass(frozen=True)
class FCSimResult:
    """Output and schedule statistics of one simulated FC pass.

    ``tiles``/``load_cycles`` are charged once per batch (the weight
    tiles stay resident while every vector streams through);
    ``mac_cycles``/``drain_cycles`` repeat per vector.
    """

    output: np.ndarray
    tiles: int
    mac_cycles: int
    drain_cycles: int
    load_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        """Load + MAC + drain cycles of the simulated schedule."""
        return self.load_cycles + self.mac_cycles + self.drain_cycles


def _tile_ranges(size: int, tile: int):
    for start in range(0, size, tile):
        yield start, min(start + tile, size)


def _pe_tile_schedule(
    batch: np.ndarray, matrix: np.ndarray, array: ArrayConfig, forward: bool
):
    """Execute the Fig. 7/8 tile schedule explicitly (the pe oracle).

    Forward (Fig. 7): row-wise vector propagation — each PE row
    multiplies its vector element into its matrix row (one MAC per PE)
    and products accumulate down each column into the first row.
    Backward (Fig. 8): column-wise propagation — each PE column
    multiplies its vector element and sums accumulate along each row.
    Only the contraction axis differs; tiles, MACs and drains are
    charged identically in both directions.

    Tiles iterate *outermost* so each weight tile is loaded once
    (``tile_rows`` broadside load cycles) and stays resident while the
    whole batch streams through it — weight reuse across the batch.
    """
    in_f, out_f = matrix.shape
    n = batch.shape[0]
    output = np.zeros((n, out_f if forward else in_f))
    tiles = mac_cycles = drain_cycles = load_cycles = 0
    for r0, r1 in _tile_ranges(in_f, array.rows):
        for c0, c1 in _tile_ranges(out_f, array.cols):
            tiles += 1
            tile = matrix[r0:r1, c0:c1]
            load_cycles += r1 - r0
            for b in range(n):
                if forward:
                    output[b, c0:c1] += (batch[b, r0:r1, None] * tile).sum(axis=0)
                else:
                    output[b, r0:r1] += (tile * batch[b, None, c0:c1]).sum(axis=1)
                mac_cycles += tile.size
                drain_cycles += (r1 - r0) + (c1 - c0)
    return output, tiles, mac_cycles, drain_cycles, load_cycles


def _prepare(vector: np.ndarray, matrix: np.ndarray, features_axis: int):
    """Normalise inputs to a (B, F) batch; return (batch, matrix, single)."""
    vector = np.asarray(vector, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    single = vector.ndim == 1
    batch = vector[None] if single else vector
    if (
        batch.ndim != 2
        or matrix.ndim != 2
        or batch.shape[1] != matrix.shape[features_axis]
    ):
        want = "(I,)" if features_axis == 0 else "(O,)"
        raise ValueError(f"need vector {want} or a (B, F) batch and matrix (I, O)")
    return batch, matrix, single


def simulate_fc_forward(
    vector: np.ndarray,
    matrix: np.ndarray,
    array: ArrayConfig = PAPER_ARRAY,
    fidelity: str = "fast",
) -> FCSimResult:
    """Fig. 7: compute ``vector @ matrix`` tile by tile.

    ``vector`` is (in_features,) or a batch (B, in_features); ``matrix``
    is (in_features, out_features).  Rows of each tile hold matrix rows,
    the vector element enters its row and multiplies across, products
    accumulate down each column.
    """
    check_fidelity(fidelity)
    batch, matrix, single = _prepare(vector, matrix, features_axis=0)
    in_f, out_f = matrix.shape
    if fidelity == "fast":
        output = fc_forward_gemm(batch, matrix)
        sched = fc_tile_stats(in_f, out_f, array, batch=batch.shape[0])
        counters = (
            sched.tiles, sched.mac_cycles, sched.drain_cycles, sched.load_cycles,
        )
    else:
        output, *counters = _pe_tile_schedule(batch, matrix, array, forward=True)
    return FCSimResult(output[0] if single else output, *counters)


def simulate_fc_backward_transposed(
    vector: np.ndarray,
    matrix: np.ndarray,
    array: ArrayConfig = PAPER_ARRAY,
    fidelity: str = "fast",
) -> FCSimResult:
    """Fig. 8: compute ``vector @ matrix.T`` *without transposing*.

    ``vector`` is (out_features,) or a batch (B, out_features) — the
    upstream gradient — and ``matrix`` is (in_features, out_features)
    exactly as stored for the forward pass.  The vector propagates down
    the columns; partial sums accumulate row-wise and drain from the
    last column.
    """
    check_fidelity(fidelity)
    batch, matrix, single = _prepare(vector, matrix, features_axis=1)
    in_f, out_f = matrix.shape
    if fidelity == "fast":
        output = fc_backward_gemm(batch, matrix)
        sched = fc_tile_stats(in_f, out_f, array, batch=batch.shape[0])
        counters = (
            sched.tiles, sched.mac_cycles, sched.drain_cycles, sched.load_cycles,
        )
    else:
        output, *counters = _pe_tile_schedule(batch, matrix, array, forward=False)
    return FCSimResult(output[0] if single else output, *counters)
