"""Functional simulation of the FC dataflows (Figs. 7 and 8).

Fig. 7: forward vector-matrix product — matrix tiles are loaded into the
array, the input vector propagates row-wise, partial sums accumulate
vertically (column-wise) into the first row.

Fig. 8: backward vector-*transposed*-matrix product — the vector
propagates column-wise and partial sums accumulate row-wise, computing
``v @ W.T`` without materialising the transpose.  This is the trick that
lets the same weight tile serve both directions.

These simulators execute the tile schedule explicitly (per-tile loads,
per-lane dot products, wavefront drains) and are validated against plain
matrix algebra in the tests, grounding the FC pass-count model of
:mod:`repro.perf.layer_cost`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = ["FCSimResult", "simulate_fc_forward", "simulate_fc_backward_transposed"]


@dataclass(frozen=True)
class FCSimResult:
    """Output and schedule statistics of one simulated FC pass."""

    output: np.ndarray
    tiles: int
    mac_cycles: int
    drain_cycles: int

    @property
    def total_cycles(self) -> int:
        """MAC + drain cycles of the simulated schedule."""
        return self.mac_cycles + self.drain_cycles


def _tile_ranges(size: int, tile: int):
    for start in range(0, size, tile):
        yield start, min(start + tile, size)


def simulate_fc_forward(
    vector: np.ndarray,
    matrix: np.ndarray,
    array: ArrayConfig = PAPER_ARRAY,
) -> FCSimResult:
    """Fig. 7: compute ``vector @ matrix`` tile by tile.

    ``vector`` is (in_features,), ``matrix`` is (in_features,
    out_features); rows of each tile hold matrix rows, the vector
    element enters its row and multiplies across, products accumulate
    down each column.
    """
    vector = np.asarray(vector, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    if vector.ndim != 1 or matrix.ndim != 2 or vector.size != matrix.shape[0]:
        raise ValueError("need vector (I,) and matrix (I, O)")
    in_f, out_f = matrix.shape
    output = np.zeros(out_f)
    tiles = 0
    mac_cycles = 0
    drain_cycles = 0
    for r0, r1 in _tile_ranges(in_f, array.rows):
        for c0, c1 in _tile_ranges(out_f, array.cols):
            tiles += 1
            tile = matrix[r0:r1, c0:c1]
            # Row-wise vector propagation: each PE row multiplies its
            # vector element into its matrix row (one MAC per PE).
            partial = vector[r0:r1, None] * tile
            # Vertical accumulation into the first row.
            output[c0:c1] += partial.sum(axis=0)
            mac_cycles += tile.size
            drain_cycles += (r1 - r0) + (c1 - c0)
    return FCSimResult(output, tiles, mac_cycles, drain_cycles)


def simulate_fc_backward_transposed(
    vector: np.ndarray,
    matrix: np.ndarray,
    array: ArrayConfig = PAPER_ARRAY,
) -> FCSimResult:
    """Fig. 8: compute ``vector @ matrix.T`` *without transposing*.

    ``vector`` is (out_features,) — the upstream gradient — and
    ``matrix`` is (in_features, out_features) exactly as stored for the
    forward pass.  The vector propagates down the columns; partial sums
    accumulate row-wise and drain from the last column.
    """
    vector = np.asarray(vector, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    if vector.ndim != 1 or matrix.ndim != 2 or vector.size != matrix.shape[1]:
        raise ValueError("need vector (O,) and matrix (I, O)")
    in_f, out_f = matrix.shape
    output = np.zeros(in_f)
    tiles = 0
    mac_cycles = 0
    drain_cycles = 0
    for r0, r1 in _tile_ranges(in_f, array.rows):
        for c0, c1 in _tile_ranges(out_f, array.cols):
            tiles += 1
            tile = matrix[r0:r1, c0:c1]
            # Column-wise vector propagation: each PE column multiplies
            # its vector element; sums accumulate along each row.
            partial = tile * vector[None, c0:c1]
            output[r0:r1] += partial.sum(axis=1)
            mac_cycles += tile.size
            drain_cycles += (r1 - r0) + (c1 - c0)
    return FCSimResult(output, tiles, mac_cycles, drain_cycles)
