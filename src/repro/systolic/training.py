"""Whole-network training-step simulation on the systolic array.

Fig. 3b defines one training iteration as batch-N forward passes plus
the backward passes of the trainable tail, all on the same datapath
that serves inference.  This module costs exactly that end to end:

* **forward** — the row-stationary conv schedule and Fig. 7 FC tile
  schedule already proven in :mod:`repro.systolic.functional` /
  :mod:`repro.systolic.fc_functional`;
* **dL/dX** — the Fig. 8 transposed pass.  For FC layers it runs on the
  layer's own resident weight tiles; for conv layers the paper's GEMM
  formulation (Section V.B, :mod:`repro.systolic.gemm_backward`)
  im2col-expands the input, after which "the backpropagation of CONV
  becomes same as the backpropagation of FC layers" — the ``(F x OC)``
  filter matrix streams transposed against the expanded gradient rows
  and the result folds back with col2im on the vector units;
* **dL/dW** — the streamed outer product: activation columns (FC) or
  expansion columns (conv) stream through resident upstream-gradient
  tiles, a Fig. 7 pass whose stationary matrix is the gradient;
* **weight update** — the trainable scalars written back per step
  (the SRAM/NVM traffic the projection charges).

Two fidelities share the API, mirroring the forward fast path:
``fidelity="fast"`` computes every product as one BLAS GEMM with
closed-form counters from :mod:`repro.systolic.cycles`;
``fidelity="pe"`` routes every pass through the loop-level oracles
(per-PE row convolutions, explicit tile schedules).  The counters are
*exactly* equal (integer equality over a property-tested grid in
``tests/test_systolic_training_equivalence.py``), and
:func:`training_step_stats` / :func:`network_training_step_cost`
produce the same numbers without executing any numerics at all — the
cheap path the execution backends charge per training update.

ReLU (comparators), max-pool routing, local response norm, bias adds
and the col2im fold run outside the MAC datapath and charge no array
cycles; norm layers are skipped numerically too, exactly as in
:func:`repro.systolic.bench.simulate_network_forward`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.cycles import (
    conv_backward_gemm_stats,
    conv_rowstationary_stats,
    fc_backward_stats,
    fc_tile_stats,
    fc_weight_grad_stats,
)
from repro.systolic.fc_functional import (
    simulate_fc_backward_transposed,
    simulate_fc_forward,
)
from repro.systolic.functional import FunctionalSystolicArray, check_fidelity
from repro.systolic.kernels import col2im, im2col

__all__ = [
    "LayerTrainingCost",
    "TrainingStepCost",
    "TrainingStepResult",
    "TrainingBenchResult",
    "training_step_stats",
    "network_training_step_cost",
    "simulate_network_training_step",
    "bench_training_fast_vs_pe",
]


@dataclass(frozen=True)
class LayerTrainingCost:
    """Forward + backward array cost of one layer in a training step.

    Frozen-prefix layers carry forward cycles only (``dw``/``dx`` zero,
    no weight update); trainable layers add both gradient GEMMs.  The
    first trainable layer still charges its dL/dX pass — the hardware
    computes it on the way to dL/dW, matching the analytic Fig. 12b
    model which charges both GEMMs for every trainable layer.
    """

    name: str
    kind: str  # "conv" | "fc"
    forward_cycles: int
    dw_cycles: int
    dx_cycles: int
    forward_macs: int
    dw_macs: int
    dx_macs: int
    weight_elements: int  # trainable scalars updated (0 when frozen)
    expansion_elements: int = 0  # im2col traffic (conv backward only)

    @property
    def trainable(self) -> bool:
        """Whether this layer trains online in the step."""
        return self.weight_elements > 0

    @property
    def backward_cycles(self) -> int:
        """dW + dX cycles."""
        return self.dw_cycles + self.dx_cycles

    @property
    def total_cycles(self) -> int:
        """Forward + backward cycles of the layer."""
        return self.forward_cycles + self.backward_cycles

    @property
    def total_macs(self) -> int:
        """Forward + backward multiply-accumulates."""
        return self.forward_macs + self.dw_macs + self.dx_macs

    @property
    def counters(self) -> tuple:
        """Integer counter signature for exact equivalence assertions."""
        return (
            self.name, self.kind, self.forward_cycles, self.dw_cycles,
            self.dx_cycles, self.forward_macs, self.dw_macs, self.dx_macs,
            self.weight_elements, self.expansion_elements,
        )


@dataclass(frozen=True)
class TrainingStepCost:
    """Array cost of one whole-network batch-N training step (Fig. 3b)."""

    network: str
    batch: int
    fidelity: str  # "closed-form" | "fast" | "pe"
    layers: tuple[LayerTrainingCost, ...]
    wall_seconds: float = 0.0

    @property
    def total_forward_cycles(self) -> int:
        """Forward cycles of the batch across all layers."""
        return sum(l.forward_cycles for l in self.layers)

    @property
    def total_dw_cycles(self) -> int:
        """Weight-gradient cycles across trainable layers."""
        return sum(l.dw_cycles for l in self.layers)

    @property
    def total_dx_cycles(self) -> int:
        """Input-gradient (Fig. 8) cycles across trainable layers."""
        return sum(l.dx_cycles for l in self.layers)

    @property
    def total_backward_cycles(self) -> int:
        """dW + dX cycles across trainable layers."""
        return self.total_dw_cycles + self.total_dx_cycles

    @property
    def total_cycles(self) -> int:
        """Whole-step array cycles (forward + backward)."""
        return self.total_forward_cycles + self.total_backward_cycles

    @property
    def total_macs(self) -> int:
        """Whole-step multiply-accumulates."""
        return sum(l.total_macs for l in self.layers)

    @property
    def cycles_per_sample(self) -> float:
        """Step cycles amortised per batch sample (the Fig. 13 curve)."""
        return self.total_cycles / self.batch if self.batch else 0.0

    @property
    def weight_update_elements(self) -> int:
        """Trainable scalars the update step writes back."""
        return sum(l.weight_elements for l in self.layers)

    @property
    def expansion_elements(self) -> int:
        """im2col elements materialised for the conv backward GEMMs."""
        return sum(l.expansion_elements for l in self.layers)

    def weight_update_bits(self, word_bits: int = 16) -> int:
        """Weight-update write traffic of one step, in bits."""
        return self.weight_update_elements * word_bits

    def array_seconds(self, config: ArrayConfig = PAPER_ARRAY) -> float:
        """Time the modelled array needs for the whole step."""
        return config.seconds(self.total_cycles)

    def iterations_per_second(self, config: ArrayConfig = PAPER_ARRAY) -> float:
        """Training iterations/sec the array sustains at this cost."""
        seconds = self.array_seconds(config)
        return 1.0 / seconds if seconds > 0.0 else float("inf")

    @property
    def counters(self) -> tuple:
        """Per-layer counter signatures (exact equality across paths)."""
        return tuple(l.counters for l in self.layers)


@dataclass(frozen=True)
class TrainingStepResult:
    """A *simulated* training step: cost plus the gradients it computed."""

    cost: TrainingStepCost
    input_batch: np.ndarray
    output: np.ndarray
    loss_grad: np.ndarray
    weight_grads: dict[str, np.ndarray]
    bias_grads: dict[str, np.ndarray]
    input_grad: np.ndarray | None


# ----------------------------------------------------------------------
# Closed-form accounting (no numerics)
# ----------------------------------------------------------------------
def _conv_layer_cost(
    name: str,
    channels: int,
    height: int,
    width: int,
    out_channels: int,
    kernel: int,
    stride: int,
    pad: int,
    batch: int,
    config: ArrayConfig,
    trainable: bool,
) -> tuple[LayerTrainingCost, tuple[int, int]]:
    """One conv layer's training cost and its (oh, ow) output extents."""
    fwd = conv_rowstationary_stats(
        channels, height + 2 * pad, width + 2 * pad, out_channels,
        kernel, kernel, stride=stride, config=config, batch=batch,
    )
    oh = (height + 2 * pad - kernel) // stride + 1
    ow = (width + 2 * pad - kernel) // stride + 1
    dw_cycles = dx_cycles = dw_macs = dx_macs = 0
    weight_elements = expansion = 0
    if trainable:
        bwd = conv_backward_gemm_stats(
            channels, height, width, out_channels, kernel, kernel,
            stride=stride, pad=pad, config=config, batch=batch,
        )
        dw_cycles, dx_cycles = bwd.dw.total_cycles, bwd.dx.total_cycles
        dw_macs, dx_macs = bwd.dw.mac_cycles, bwd.dx.mac_cycles
        expansion = bwd.expansion_elements
        weight_elements = out_channels * channels * kernel * kernel + out_channels
    return (
        LayerTrainingCost(
            name=name, kind="conv",
            forward_cycles=fwd.total_cycles,
            dw_cycles=dw_cycles, dx_cycles=dx_cycles,
            forward_macs=fwd.total_pe_cycles,
            dw_macs=dw_macs, dx_macs=dx_macs,
            weight_elements=weight_elements,
            expansion_elements=expansion,
        ),
        (oh, ow),
    )


def _fc_layer_cost(
    name: str,
    in_features: int,
    out_features: int,
    batch: int,
    config: ArrayConfig,
    trainable: bool,
) -> LayerTrainingCost:
    """One FC layer's training cost."""
    fwd = fc_tile_stats(in_features, out_features, config, batch=batch)
    dw_cycles = dx_cycles = dw_macs = dx_macs = weight_elements = 0
    if trainable:
        dw = fc_weight_grad_stats(in_features, out_features, config, batch=batch)
        dx = fc_backward_stats(in_features, out_features, config, batch=batch)
        dw_cycles, dx_cycles = dw.total_cycles, dx.total_cycles
        dw_macs, dx_macs = dw.mac_cycles, dx.mac_cycles
        weight_elements = in_features * out_features + out_features
    return LayerTrainingCost(
        name=name, kind="fc",
        forward_cycles=fwd.total_cycles,
        dw_cycles=dw_cycles, dx_cycles=dx_cycles,
        forward_macs=fwd.mac_cycles,
        dw_macs=dw_macs, dx_macs=dx_macs,
        weight_elements=weight_elements,
    )


def _first_trainable_spec_index(n_layers: int, train_last_k: int | None) -> int:
    """Spec-layer index where backpropagation stops (0 = end to end)."""
    if train_last_k is None or train_last_k >= n_layers:
        return 0
    if train_last_k <= 0:
        raise ValueError("train_last_k must be positive or None")
    return n_layers - train_last_k


def training_step_stats(
    spec=None,
    batch: int = 4,
    config: ArrayConfig = PAPER_ARRAY,
    train_last_k: int | None = None,
) -> TrainingStepCost:
    """Closed-form whole-network training-step cost from a spec.

    ``spec`` defaults to the paper-scale modified AlexNet; every layer
    of a spec is parametric, so ``train_last_k`` counts spec layers from
    the output — the FC layers are last, matching the L2/L3/L4
    ``last_k_fc`` convention (``None`` = end to end).  No numerics run:
    this is pure shape arithmetic, cheap enough to charge per training
    update from an execution backend.
    """
    # Lazy import: repro.nn imports repro.systolic.kernels.
    from repro.nn.alexnet import modified_alexnet_spec
    from repro.nn.specs import ConvSpec, FCSpec

    if spec is None:
        spec = modified_alexnet_spec()
    if batch <= 0:
        raise ValueError("batch must be positive")
    first_trainable = _first_trainable_spec_index(len(spec.layers), train_last_k)
    layers: list[LayerTrainingCost] = []
    for index, layer_spec in enumerate(spec.layers):
        trainable = index >= first_trainable
        if isinstance(layer_spec, ConvSpec):
            cost, _ = _conv_layer_cost(
                layer_spec.name, layer_spec.in_channels, layer_spec.in_height,
                layer_spec.in_width, layer_spec.out_channels, layer_spec.kernel,
                layer_spec.stride, layer_spec.pad, batch, config, trainable,
            )
        elif isinstance(layer_spec, FCSpec):
            cost = _fc_layer_cost(
                layer_spec.name, layer_spec.in_features,
                layer_spec.out_features, batch, config, trainable,
            )
        else:  # pragma: no cover - spec classes are closed
            raise TypeError(f"unknown spec type: {type(layer_spec)!r}")
        layers.append(cost)
    return TrainingStepCost(
        network=spec.name, batch=batch, fidelity="closed-form",
        layers=tuple(layers),
    )


def _network_cost_signature(network, first_trainable: int) -> tuple:
    """Hashable geometry signature of everything the cost walk reads.

    Per layer: the class kind plus exactly the attributes
    :func:`network_training_step_cost` consumes (names included — they
    appear in the returned per-layer records).  Two networks with equal
    signatures get byte-identical cost records, so the signature is a
    safe memo key where the ``Network`` object itself (mutable weights,
    unhashable) is not.
    """
    from repro.nn.layers import Conv2D, Dense, MaxPool2D

    rows: list[tuple] = [(network.name, int(first_trainable))]
    for layer in network.layers:
        if isinstance(layer, Conv2D):
            rows.append(
                ("conv", layer.name, layer.out_channels, layer.kernel_size,
                 layer.stride, layer.pad)
            )
        elif isinstance(layer, MaxPool2D):
            rows.append(("pool", layer.pool_size, layer.stride))
        elif isinstance(layer, Dense):
            rows.append(
                ("fc", layer.name, layer.in_features, layer.out_features)
            )
        # Other layer kinds contribute no cost and no shape change.
    return tuple(rows)


def network_training_step_cost(
    network,
    state_shape: tuple[int, ...],
    batch: int,
    config: ArrayConfig = PAPER_ARRAY,
    first_trainable: int = 0,
) -> TrainingStepCost:
    """Closed-form training-step cost of a built ``Network``.

    Walks ``network.layers`` tracking the activation shape from
    ``state_shape`` (C, H, W); ``first_trainable`` is a layer index in
    the built stack, exactly as :class:`~repro.rl.agent.QLearningAgent`
    holds it.  This is the per-update charge of
    ``ExecutionBackend.train_cost``.

    Memoised on the network's geometry signature
    (:func:`_network_cost_signature`) plus the call arguments — the
    scheduler re-derives this cost every train step for an unchanging
    stack, so steady-state calls are a dict lookup.
    """
    from repro.parallel import memo as _memo

    if _memo.memo_enabled():
        key = (
            _network_cost_signature(network, first_trainable),
            tuple(int(v) for v in state_shape), int(batch), config,
        )
        table = _memo.cache("network_training_step_cost")
        cost = table.get(key)
        if cost is not _memo._MISS:
            return cost
        return table.put(
            key,
            _network_training_step_cost(
                network, state_shape, batch, config, first_trainable
            ),
        )
    return _network_training_step_cost(
        network, state_shape, batch, config, first_trainable
    )


def _network_training_step_cost(
    network,
    state_shape: tuple[int, ...],
    batch: int,
    config: ArrayConfig,
    first_trainable: int,
) -> TrainingStepCost:
    from repro.nn.layers import Conv2D, Dense, MaxPool2D

    if batch <= 0:
        raise ValueError("batch must be positive")
    if len(state_shape) != 3:
        raise ValueError(f"state_shape must be (C, H, W), got {state_shape!r}")
    c, h, w = (int(v) for v in state_shape)
    layers: list[LayerTrainingCost] = []
    for index, layer in enumerate(network.layers):
        trainable = index >= first_trainable
        if isinstance(layer, Conv2D):
            cost, (h, w) = _conv_layer_cost(
                layer.name, c, h, w, layer.out_channels, layer.kernel_size,
                layer.stride, layer.pad, batch, config, trainable,
            )
            c = layer.out_channels
            layers.append(cost)
        elif isinstance(layer, MaxPool2D):
            h, w = layer.output_shape(h, w)
        elif isinstance(layer, Dense):
            layers.append(
                _fc_layer_cost(
                    layer.name, layer.in_features, layer.out_features,
                    batch, config, trainable,
                )
            )
        # ReLU / norm / dropout / flatten: comparator or vector units,
        # shape bookkeeping only — no MAC cycles.
    return TrainingStepCost(
        network=network.name, batch=batch, fidelity="closed-form",
        layers=tuple(layers),
    )


# ----------------------------------------------------------------------
# Executed simulation (fast GEMMs or the PE oracle)
# ----------------------------------------------------------------------
def simulate_network_training_step(
    spec=None,
    batch: int = 4,
    fidelity: str = "fast",
    seed: int = 0,
    config: ArrayConfig | None = None,
    train_last_k: int | None = None,
    network=None,
) -> TrainingStepResult:
    """Execute one batch-N training step through the systolic simulators.

    Runs the forward pass layer by layer (caching activations and ReLU
    masks, executing pools functionally), applies a random loss gradient
    at the output, then chains the backward GEMMs down to the first
    trainable layer — dL/dX via the Fig. 8 transposed pass, dL/dW via
    the streamed outer product, conv layers through the Section V.B
    im2col expansion.  Counter totals are exactly the closed-form
    :func:`training_step_stats` at either fidelity.

    ``network`` optionally supplies the weights (a
    :func:`~repro.nn.alexnet.build_network` instance of the same spec),
    so the chained gradients can be cross-validated against the float
    autograd; without it, weights draw from ``seed`` and biases are
    zero (bias adds ride the drain path and never change the cycle
    accounting).  Norm layers are skipped numerically, as in the
    forward bench — pass specs with ``norm=False`` when cross-checking
    against an autograd network.
    """
    from repro.nn.alexnet import modified_alexnet_spec
    from repro.nn.layers import MaxPool2D
    from repro.nn.specs import ConvSpec, FCSpec

    check_fidelity(fidelity)
    if spec is None:
        spec = modified_alexnet_spec()
    if batch <= 0:
        raise ValueError("batch must be positive")
    rng = np.random.default_rng(seed)
    sim = FunctionalSystolicArray(config, fidelity=fidelity)
    array = sim.config
    first_trainable = _first_trainable_spec_index(len(spec.layers), train_last_k)

    by_name = {}
    if network is not None:
        by_name = {layer.name: layer for _i, layer in network.parametric_layers()}

    def layer_weights(layer_spec, shape):
        if layer_spec.name in by_name:
            layer = by_name[layer_spec.name]
            return layer.weight.value, layer.bias.value
        weights = rng.normal(size=shape, scale=0.05)
        return weights, np.zeros(shape[0] if len(shape) == 4 else shape[1])

    x = rng.normal(
        size=(batch, spec.input_channels, spec.input_side, spec.input_side)
    )
    input_batch = x.copy()
    start = time.perf_counter()

    # Forward walk, caching what the backward chain needs.
    caches: list[dict] = []
    flattened = False
    for layer_spec in spec.layers:
        cache: dict = {"spec": layer_spec}
        if isinstance(layer_spec, ConvSpec):
            w, b = layer_weights(
                layer_spec,
                (
                    layer_spec.out_channels, layer_spec.in_channels,
                    layer_spec.kernel, layer_spec.kernel,
                ),
            )
            cache["x"] = x
            cache["w"] = w
            out, fwd_stats = sim.conv2d(
                x, w, stride=layer_spec.stride, pad=layer_spec.pad
            )
            out = out + b[None, :, None, None]
            cache["fwd_stats"] = fwd_stats
            cache["mask"] = out > 0
            x = out * cache["mask"]
            if layer_spec.pool is not None:
                pool = MaxPool2D(layer_spec.pool, layer_spec.pool_stride)
                x = pool.forward(x, training=True)
                cache["pool"] = pool
        elif isinstance(layer_spec, FCSpec):
            if not flattened:
                x = x.reshape(batch, -1)
                flattened = True
            w, b = layer_weights(
                layer_spec, (layer_spec.in_features, layer_spec.out_features)
            )
            cache["x"] = x
            cache["w"] = w
            result = simulate_fc_forward(x, w, array=array, fidelity=fidelity)
            out = result.output + b
            cache["fwd_result"] = result
            if layer_spec is not spec.layers[-1]:
                cache["mask"] = out > 0
                x = out * cache["mask"]
            else:
                x = out
        else:  # pragma: no cover - spec classes are closed
            raise TypeError(f"unknown spec type: {type(layer_spec)!r}")
        caches.append(cache)
    output = x

    # The training loss gradient at the Q outputs (eq. 1's regression
    # residual in shape; random values — cycles depend only on shapes).
    grad = rng.normal(size=output.shape)
    loss_grad = grad.copy()

    # Backward chain down to the first trainable layer.
    layers: list[LayerTrainingCost] = []
    weight_grads: dict[str, np.ndarray] = {}
    bias_grads: dict[str, np.ndarray] = {}
    input_grad: np.ndarray | None = None
    for index in range(len(spec.layers) - 1, -1, -1):
        cache = caches[index]
        layer_spec = cache["spec"]
        trainable = index >= first_trainable
        if isinstance(layer_spec, FCSpec):
            if "mask" in cache:
                grad = grad * cache["mask"]
            dw_cycles = dx_cycles = dw_macs = dx_macs = weight_elements = 0
            if trainable:
                x_in, w = cache["x"], cache["w"]
                # dW = x^T @ grad: activation columns stream through the
                # resident gradient tiles (a Fig. 7 pass, batch = in_f).
                dw_res = simulate_fc_forward(
                    np.ascontiguousarray(x_in.T), grad, array=array,
                    fidelity=fidelity,
                )
                weight_grads[layer_spec.name] = dw_res.output
                bias_grads[layer_spec.name] = grad.sum(axis=0)
                # dX = grad @ W^T: the Fig. 8 transposed pass over the
                # layer's own resident tiles.
                dx_res = simulate_fc_backward_transposed(
                    grad, w, array=array, fidelity=fidelity
                )
                dw_cycles, dw_macs = dw_res.total_cycles, dw_res.mac_cycles
                dx_cycles, dx_macs = dx_res.total_cycles, dx_res.mac_cycles
                weight_elements = (
                    layer_spec.in_features * layer_spec.out_features
                    + layer_spec.out_features
                )
                grad = input_grad = dx_res.output
            fwd = cache["fwd_result"]
            layers.append(
                LayerTrainingCost(
                    name=layer_spec.name, kind="fc",
                    forward_cycles=fwd.total_cycles,
                    dw_cycles=dw_cycles, dx_cycles=dx_cycles,
                    forward_macs=fwd.mac_cycles,
                    dw_macs=dw_macs, dx_macs=dx_macs,
                    weight_elements=weight_elements,
                )
            )
        else:  # ConvSpec
            if index == len(spec.conv_layers) - 1 and grad.ndim == 2:
                # Un-flatten the gradient entering the conv prefix.
                n = grad.shape[0]
                ref = caches[index]
                pooled = (
                    ref["pool"].output_shape(*ref["mask"].shape[2:])
                    if "pool" in ref
                    else ref["mask"].shape[2:]
                )
                grad = grad.reshape(n, layer_spec.out_channels, *pooled)
            if "pool" in cache:
                grad = cache["pool"].backward(grad)
            grad = grad * cache["mask"]
            dw_cycles = dx_cycles = dw_macs = dx_macs = 0
            weight_elements = expansion = 0
            if trainable:
                x_in, w = cache["x"], cache["w"]
                k, s, p = layer_spec.kernel, layer_spec.stride, layer_spec.pad
                oc = layer_spec.out_channels
                n = x_in.shape[0]
                # Section V.B: expand the input, then backprop like FC.
                cols = im2col(x_in, k, k, s, p)  # (N, F, P)
                f_dim, positions = cols.shape[1], cols.shape[2]
                cols_rows = cols.transpose(0, 2, 1).reshape(n * positions, f_dim)
                grad_rows = grad.transpose(0, 2, 3, 1).reshape(n * positions, oc)
                m = w.reshape(oc, -1).T  # (F, OC), the forward layout
                # dW: expansion columns stream through gradient tiles.
                dw_res = simulate_fc_forward(
                    np.ascontiguousarray(cols_rows.T), grad_rows,
                    array=array, fidelity=fidelity,
                )
                weight_grads[layer_spec.name] = dw_res.output.T.reshape(w.shape)
                bias_grads[layer_spec.name] = grad_rows.sum(axis=0)
                # dX: Fig. 8 transposed pass of the filter matrix, then
                # the col2im fold (vector units, no MAC cycles).
                dx_res = simulate_fc_backward_transposed(
                    grad_rows, m, array=array, fidelity=fidelity
                )
                dcols = dx_res.output.reshape(n, positions, f_dim).transpose(0, 2, 1)
                grad = input_grad = col2im(dcols, x_in.shape, k, k, s, p)
                dw_cycles, dw_macs = dw_res.total_cycles, dw_res.mac_cycles
                dx_cycles, dx_macs = dx_res.total_cycles, dx_res.mac_cycles
                expansion = n * f_dim * positions
                weight_elements = oc * layer_spec.in_channels * k * k + oc
            fwd = cache["fwd_stats"]
            layers.append(
                LayerTrainingCost(
                    name=layer_spec.name, kind="conv",
                    forward_cycles=fwd.total_cycles,
                    dw_cycles=dw_cycles, dx_cycles=dx_cycles,
                    forward_macs=fwd.total_pe_cycles,
                    dw_macs=dw_macs, dx_macs=dx_macs,
                    weight_elements=weight_elements,
                    expansion_elements=expansion,
                )
            )
        if not trainable:
            break
    wall = time.perf_counter() - start
    # Layers were visited output-to-input; report input-to-output, with
    # forward-only records for any frozen prefix the loop never reached.
    visited = {l.name for l in layers}
    prefix: list[LayerTrainingCost] = []
    for index, cache in enumerate(caches):
        layer_spec = cache["spec"]
        if layer_spec.name in visited:
            break
        if isinstance(layer_spec, FCSpec):
            fwd = cache["fwd_result"]
            prefix.append(
                LayerTrainingCost(
                    name=layer_spec.name, kind="fc",
                    forward_cycles=fwd.total_cycles, dw_cycles=0, dx_cycles=0,
                    forward_macs=fwd.mac_cycles, dw_macs=0, dx_macs=0,
                    weight_elements=0,
                )
            )
        else:
            fwd = cache["fwd_stats"]
            prefix.append(
                LayerTrainingCost(
                    name=layer_spec.name, kind="conv",
                    forward_cycles=fwd.total_cycles, dw_cycles=0, dx_cycles=0,
                    forward_macs=fwd.total_pe_cycles, dw_macs=0, dx_macs=0,
                    weight_elements=0,
                )
            )
    cost = TrainingStepCost(
        network=spec.name, batch=batch, fidelity=fidelity,
        layers=tuple(prefix) + tuple(reversed(layers)),
        wall_seconds=wall,
    )
    return TrainingStepResult(
        cost=cost,
        input_batch=input_batch,
        output=output,
        loss_grad=loss_grad,
        weight_grads=weight_grads,
        bias_grads=bias_grads,
        input_grad=input_grad,
    )


# ----------------------------------------------------------------------
# Fast-vs-oracle benchmark harness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrainingBenchResult:
    """Fast-vs-oracle timing of one whole-network training step."""

    network: str
    batch: int
    macs: int
    pe_seconds: float
    fast_seconds: float

    @property
    def speedup(self) -> float:
        """Fast-path speedup over the PE/tile-schedule oracle."""
        return self.pe_seconds / self.fast_seconds

    @property
    def fast_macs_per_second(self) -> float:
        """Simulated MAC throughput of the fast training step."""
        return self.macs / self.fast_seconds

    @property
    def pe_macs_per_second(self) -> float:
        """Simulated MAC throughput of the oracle training step."""
        return self.macs / self.pe_seconds


def bench_training_fast_vs_pe(
    spec=None,
    batch: int = 2,
    seed: int = 0,
    config: ArrayConfig | None = None,
    pe_repeats: int = 1,
    fast_repeats: int = 5,
) -> TrainingBenchResult:
    """Time one training step under both fidelities (min over repeats).

    Re-proves on the way that the two paths produce identical integer
    counters and matching gradients, and that both equal the closed
    form — every benchmark run re-verifies the equivalence it measures.
    ``spec`` defaults to a reduced drone net the oracle can finish.
    """
    from repro.nn.alexnet import scaled_drone_net_spec

    if spec is None:
        spec = scaled_drone_net_spec(input_side=16)
    pe_seconds = float("inf")
    for _ in range(max(pe_repeats, 1)):
        start = time.perf_counter()
        pe = simulate_network_training_step(
            spec, batch=batch, fidelity="pe", seed=seed, config=config
        )
        pe_seconds = min(pe_seconds, time.perf_counter() - start)
    fast_seconds = float("inf")
    for _ in range(max(fast_repeats, 1)):
        start = time.perf_counter()
        fast = simulate_network_training_step(
            spec, batch=batch, fidelity="fast", seed=seed, config=config
        )
        fast_seconds = min(fast_seconds, time.perf_counter() - start)

    if fast.cost.counters != pe.cost.counters:
        raise RuntimeError(
            f"training counters diverged: fast {fast.cost.counters} "
            f"vs oracle {pe.cost.counters}"
        )
    closed = training_step_stats(
        spec, batch=batch, config=config or PAPER_ARRAY
    )
    if closed.counters != pe.cost.counters:
        raise RuntimeError("closed-form counters diverged from the oracle")
    for name, grad in fast.weight_grads.items():
        if not np.allclose(grad, pe.weight_grads[name], rtol=1e-9, atol=1e-9):
            raise RuntimeError(f"{name}: fast dW diverged from the oracle")
    return TrainingBenchResult(
        network=spec.name, batch=batch, macs=fast.cost.total_macs,
        pe_seconds=pe_seconds, fast_seconds=fast_seconds,
    )
