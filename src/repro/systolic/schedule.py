"""Pass-by-pass schedule generation for convolution mappings.

A :class:`~repro.systolic.conv_mapping.ConvMapping` summarises geometry;
this module expands it into the explicit sequence of array *passes* the
hardware would execute: which output rows and output channels each pass
produces, and how many weight/input bits the global buffer must deliver
for it.  Tests verify **work conservation** — every output element of
the layer is produced by exactly one pass — which is the property that
makes the analytic cycle counts trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.specs import ConvSpec
from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.conv_mapping import ConvMapping, map_conv_layer

__all__ = ["ArrayPass", "ConvSchedule", "build_conv_schedule"]


@dataclass(frozen=True)
class ArrayPass:
    """One pass of the PE array over a slice of the output tensor."""

    index: int
    out_rows: tuple[int, int]        # half-open row range produced
    out_channels: tuple[int, int]    # half-open channel range produced
    channel_split: int               # which input-channel split (Type II)
    weight_bits: int                 # filter bits loaded for this pass
    input_bits: int                  # activation bits streamed

    @property
    def output_elements(self) -> int:
        """Output elements this pass completes (0 for partial splits)."""
        rows = self.out_rows[1] - self.out_rows[0]
        chans = self.out_channels[1] - self.out_channels[0]
        return rows * chans


@dataclass(frozen=True)
class ConvSchedule:
    """The full pass sequence of one layer."""

    layer: str
    mapping: ConvMapping
    passes: tuple[ArrayPass, ...]
    out_height: int
    out_width: int
    out_channels: int

    @property
    def total_weight_bits(self) -> int:
        """Filter bits streamed over the whole schedule."""
        return sum(p.weight_bits for p in self.passes)

    @property
    def total_input_bits(self) -> int:
        """Activation bits streamed over the whole schedule."""
        return sum(p.input_bits for p in self.passes)

    def covered_output_rows(self) -> set[tuple[int, int]]:
        """(row, channel) pairs produced, for conservation checks.

        Only the final channel split completes an output (earlier splits
        leave partial sums), so coverage counts split index
        ``mapping.channel_split - 1``.
        """
        covered = set()
        final_split = self.mapping.channel_split - 1
        for array_pass in self.passes:
            if array_pass.channel_split != final_split:
                continue
            for row in range(*array_pass.out_rows):
                for ch in range(*array_pass.out_channels):
                    covered.add((row, ch))
        return covered


def build_conv_schedule(
    spec: ConvSpec,
    array: ArrayConfig = PAPER_ARRAY,
    word_bits: int = 16,
) -> ConvSchedule:
    """Expand ``spec``'s mapping into its explicit pass sequence."""
    mapping = map_conv_layer(spec, array)
    rows_per_pass = (
        array.cols if mapping.mapping_type.value == "I" else mapping.cols_used
    )
    channels_per_pass = mapping.output_channels_per_pass
    split_channels = max(spec.in_channels // max(mapping.channel_split, 1), 1)
    per_filter_bits = spec.kernel * spec.kernel * split_channels * word_bits
    passes = []
    index = 0
    for row_start in range(0, spec.out_height, rows_per_pass):
        row_end = min(row_start + rows_per_pass, spec.out_height)
        # Input rows needed: the receptive field of the produced rows.
        in_rows = (row_end - row_start - 1) * spec.stride + spec.kernel
        input_bits = in_rows * spec.in_width * split_channels * word_bits
        for ch_start in range(0, spec.out_channels, channels_per_pass):
            ch_end = min(ch_start + channels_per_pass, spec.out_channels)
            for split in range(mapping.channel_split):
                passes.append(
                    ArrayPass(
                        index=index,
                        out_rows=(row_start, row_end),
                        out_channels=(ch_start, ch_end),
                        channel_split=split,
                        weight_bits=(ch_end - ch_start) * per_filter_bits,
                        input_bits=input_bits,
                    )
                )
                index += 1
    return ConvSchedule(
        layer=spec.name,
        mapping=mapping,
        passes=tuple(passes),
        out_height=spec.out_height,
        out_width=spec.out_width,
        out_channels=spec.out_channels,
    )
