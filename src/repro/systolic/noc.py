"""Interconnect (NoC) data-movement accounting, intra- and inter-array.

Two levels of network live here:

* **intra-array** (:class:`CommunicationCost` /
  :func:`analyze_conv_communication`) — the word-hop counts of one conv
  layer's execution over the PE mesh, bounding the interconnect's share
  of layer energy;
* **inter-array** (:class:`NocModel`) — the cycle cost of moving
  activations, Q gathers and gradients between the K arrays a
  :class:`~repro.backend.sharded.ShardedBackend` composes.  The model
  is parameterised on the link bit-width (128-bit links, Fig. 4b), the
  quantised word width, and a topology: ``flat`` (the legacy
  1-cycle-per-element single-hop model — the degenerate case every
  pinned sharding number was measured under), ``ring`` (K arrays on a
  bidirectional ring, shortest-way hop counts) or ``mesh`` (K arrays on
  a near-square 2D grid, Manhattan hop counts).  Transfers are
  store-and-forward: ``ceil(elements / words_per_cycle) * hops``.

Each PE has 128-bit links to its four neighbours plus a diagonal link
(Fig. 4b).  The row-stationary mappings move partial sums and outputs
over those links:

* **vertical psum accumulation** — partial sums hop down a segment's
  ``kernel_height`` rows to its first row (Fig. 6 step 4), once per
  sequential channel split,
* **cross-set transfer** — Type III only: set 2's accumulated psums hop
  horizontally across the set boundary into set 1 before the final add
  (the paper's "the output from PE at 14th column must be transferred to
  the PE in the 1st column in set 1"),
* **buffer drain** — completed outputs leave through the first row.

Counting word-hops quantifies the interconnect's share of layer energy
(at a per-word-hop energy typical of short 15 nm links).  Note the hop
*volume* does not by itself predict the calibrated per-type efficiency
factors — those are dominated by pipeline serialisation, which needs a
cycle-accurate array model; the counts here bound the interconnect's
energy contribution instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.specs import ConvSpec
from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.conv_mapping import ConvMapping, MappingType, map_conv_layer

__all__ = [
    "CommunicationCost",
    "analyze_conv_communication",
    "NocModel",
    "NOC_TOPOLOGIES",
    "DEFAULT_LINK_BITS",
]

#: Energy to move one 16-bit word one PE hop (short 15 nm link + FIFO).
DEFAULT_HOP_ENERGY_J = 0.1e-12

#: Supported inter-array topologies.
NOC_TOPOLOGIES = ("flat", "ring", "mesh")

#: Inter-array link width — the same 128-bit links the PEs use (Fig. 4b).
DEFAULT_LINK_BITS = 128


@dataclass(frozen=True)
class NocModel:
    """Cycle model of the inter-array interconnect.

    ``flat`` reproduces the legacy merge accounting *exactly*: every
    link is one hop wide and moves one word per cycle, so
    ``transfer_cycles(n, src, dst) == n`` whenever ``src != dst`` —
    the 1-cycle-per-element model all pinned sharding numbers were
    measured under.  ``ring`` and ``mesh`` pay real hop counts but move
    ``link_bits // word_bits`` words per beat, so short hauls on wide
    links can beat the flat model while long hauls cost more.

    Parameters
    ----------
    topology:
        One of :data:`NOC_TOPOLOGIES`.
    nodes:
        Number of arrays on the network (node ids are array indices).
    link_bits:
        Physical link width in bits (128, Fig. 4b).
    word_bits:
        Width of one transferred element — the quantised activation /
        gradient word (16 for Q8.8).
    """

    topology: str = "flat"
    nodes: int = 1
    link_bits: int = DEFAULT_LINK_BITS
    word_bits: int = 16

    def __post_init__(self) -> None:
        if self.topology not in NOC_TOPOLOGIES:
            raise ValueError(
                f"unknown NoC topology {self.topology!r}; "
                f"expected one of {NOC_TOPOLOGIES}"
            )
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")
        if self.link_bits <= 0 or self.word_bits <= 0:
            raise ValueError("link_bits and word_bits must be positive")
        if self.topology != "flat" and self.link_bits < self.word_bits:
            raise ValueError(
                "link narrower than one word: a beat cannot carry a "
                f"{self.word_bits}-bit element over {self.link_bits}-bit links"
            )

    @property
    def words_per_cycle(self) -> int:
        """Elements one link moves per cycle (1 on the flat model)."""
        if self.topology == "flat":
            return 1
        return self.link_bits // self.word_bits

    @property
    def _mesh_cols(self) -> int:
        rows = max(1, int(self.nodes ** 0.5))
        return -(-self.nodes // rows)

    def hops(self, src: int, dst: int) -> int:
        """Link hops between two arrays (0 when ``src == dst``)."""
        for node in (src, dst):
            if not 0 <= node < self.nodes:
                raise ValueError(
                    f"node {node} outside the {self.nodes}-array network"
                )
        if src == dst:
            return 0
        if self.topology == "ring":
            around = abs(src - dst)
            return min(around, self.nodes - around)
        if self.topology == "mesh":
            cols = self._mesh_cols
            return abs(src // cols - dst // cols) + abs(src % cols - dst % cols)
        return 1  # flat: every array one hop from every other

    def transfer_cycles(self, elements: int, src: int, dst: int) -> int:
        """Cycles to move ``elements`` words from array src to dst.

        Store-and-forward: each of the ``hops`` links serialises the
        whole payload at ``words_per_cycle``.  Zero for empty payloads
        and for same-array "transfers" (nothing crosses a link).
        """
        if elements < 0:
            raise ValueError("elements must be non-negative")
        if elements == 0:
            return 0
        hops = self.hops(src, dst)
        if hops == 0:
            return 0
        return -(-elements // self.words_per_cycle) * hops

    def element_hops(self, elements: int, src: int, dst: int) -> int:
        """Total element-hops of the transfer (the traffic volume)."""
        if elements < 0:
            raise ValueError("elements must be non-negative")
        return elements * self.hops(src, dst)


@dataclass(frozen=True)
class CommunicationCost:
    """Hop-level interconnect accounting for one conv layer."""

    layer: str
    mapping_type: MappingType
    accumulation_hops: int     # vertical psum word-hops
    cross_set_hops: int        # Type III set-2 -> set-1 word-hops
    drain_hops: int            # outputs leaving through the first row
    compute_macs: int

    @property
    def total_hops(self) -> int:
        """All word-hops of the layer."""
        return self.accumulation_hops + self.cross_set_hops + self.drain_hops

    @property
    def hops_per_mac(self) -> float:
        """Interconnect words moved per MAC — a data-movement intensity."""
        if self.compute_macs <= 0:
            raise ValueError("layer has no compute")
        return self.total_hops / self.compute_macs

    def interconnect_energy_j(
        self, hop_energy_j: float = DEFAULT_HOP_ENERGY_J
    ) -> float:
        """Total interconnect energy of the layer."""
        if hop_energy_j < 0:
            raise ValueError("hop energy must be non-negative")
        return self.total_hops * hop_energy_j


def analyze_conv_communication(
    spec: ConvSpec, array: ArrayConfig = PAPER_ARRAY
) -> CommunicationCost:
    """Count the word-hops of one convolution layer's full execution."""
    mapping: ConvMapping = map_conv_layer(spec, array)
    fh = mapping.segment_rows
    out_elems = spec.out_height * spec.out_width * spec.out_channels

    # Vertical accumulation: each output element's psum traverses the
    # segment's fh-1 inter-row links once per sequential channel split.
    accumulation = out_elems * (fh - 1) * mapping.channel_split

    # Type III: half of each output's partial sums cross the set
    # boundary — on average out_width/2 horizontal hops.
    cross_set = 0
    if mapping.mapping_type is MappingType.TYPE_III:
        cross_set = out_elems * spec.out_width // 2

    # Drain: every completed output leaves via the first row.
    drain = out_elems

    return CommunicationCost(
        layer=spec.name,
        mapping_type=mapping.mapping_type,
        accumulation_hops=accumulation,
        cross_set_hops=cross_set,
        drain_hops=drain,
        compute_macs=spec.macs,
    )
