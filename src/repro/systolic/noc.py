"""Inter-PE interconnect (NoC) data-movement accounting.

Each PE has 128-bit links to its four neighbours plus a diagonal link
(Fig. 4b).  The row-stationary mappings move partial sums and outputs
over those links:

* **vertical psum accumulation** — partial sums hop down a segment's
  ``kernel_height`` rows to its first row (Fig. 6 step 4), once per
  sequential channel split,
* **cross-set transfer** — Type III only: set 2's accumulated psums hop
  horizontally across the set boundary into set 1 before the final add
  (the paper's "the output from PE at 14th column must be transferred to
  the PE in the 1st column in set 1"),
* **buffer drain** — completed outputs leave through the first row.

Counting word-hops quantifies the interconnect's share of layer energy
(at a per-word-hop energy typical of short 15 nm links).  Note the hop
*volume* does not by itself predict the calibrated per-type efficiency
factors — those are dominated by pipeline serialisation, which needs a
cycle-accurate array model; the counts here bound the interconnect's
energy contribution instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.specs import ConvSpec
from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.conv_mapping import ConvMapping, MappingType, map_conv_layer

__all__ = ["CommunicationCost", "analyze_conv_communication"]

#: Energy to move one 16-bit word one PE hop (short 15 nm link + FIFO).
DEFAULT_HOP_ENERGY_J = 0.1e-12


@dataclass(frozen=True)
class CommunicationCost:
    """Hop-level interconnect accounting for one conv layer."""

    layer: str
    mapping_type: MappingType
    accumulation_hops: int     # vertical psum word-hops
    cross_set_hops: int        # Type III set-2 -> set-1 word-hops
    drain_hops: int            # outputs leaving through the first row
    compute_macs: int

    @property
    def total_hops(self) -> int:
        """All word-hops of the layer."""
        return self.accumulation_hops + self.cross_set_hops + self.drain_hops

    @property
    def hops_per_mac(self) -> float:
        """Interconnect words moved per MAC — a data-movement intensity."""
        if self.compute_macs <= 0:
            raise ValueError("layer has no compute")
        return self.total_hops / self.compute_macs

    def interconnect_energy_j(
        self, hop_energy_j: float = DEFAULT_HOP_ENERGY_J
    ) -> float:
        """Total interconnect energy of the layer."""
        if hop_energy_j < 0:
            raise ValueError("hop energy must be non-negative")
        return self.total_hops * hop_energy_j


def analyze_conv_communication(
    spec: ConvSpec, array: ArrayConfig = PAPER_ARRAY
) -> CommunicationCost:
    """Count the word-hops of one convolution layer's full execution."""
    mapping: ConvMapping = map_conv_layer(spec, array)
    fh = mapping.segment_rows
    out_elems = spec.out_height * spec.out_width * spec.out_channels

    # Vertical accumulation: each output element's psum traverses the
    # segment's fh-1 inter-row links once per sequential channel split.
    accumulation = out_elems * (fh - 1) * mapping.channel_split

    # Type III: half of each output's partial sums cross the set
    # boundary — on average out_width/2 horizontal hops.
    cross_set = 0
    if mapping.mapping_type is MappingType.TYPE_III:
        cross_set = out_elems * spec.out_width // 2

    # Drain: every completed output leaves via the first row.
    drain = out_elems

    return CommunicationCost(
        layer=spec.name,
        mapping_type=mapping.mapping_type,
        accumulation_hops=accumulation,
        cross_set_hops=cross_set,
        drain_hops=drain,
        compute_macs=spec.macs,
    )
