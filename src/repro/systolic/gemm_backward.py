"""GEMM-based convolution backpropagation (Section V.B).

"For CONV layers, we use GEMM, where the system first reads the data
from the STT-MRAM array to the logic die, and expands the inputs to each
CONV layers in a 2D matrix.  Once the expansion is complete, the
backpropagation of CONV becomes same as the backpropagation of FC
layers."

This module executes exactly that pipeline functionally:

1. im2col-expand the layer input into the 2-D matrix ``cols``
   (KH*KW*C x OH*OW),
2. weight gradient as the FC-style product ``dout_2d @ cols.T``,
3. input gradient as the transposed product ``W_2d.T @ dout_2d``
   followed by col2im folding,

and counts the expansion traffic (the bits that must stream through the
logic die) that the analytic cost model charges.  Validated against
:class:`repro.nn.layers.Conv2D`'s autograd in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.systolic.kernels import col2im, im2col

__all__ = ["GemmBackwardResult", "conv_backward_gemm"]


@dataclass(frozen=True)
class GemmBackwardResult:
    """Gradients plus the data-movement accounting of the GEMM path."""

    weight_grad: np.ndarray
    bias_grad: np.ndarray
    input_grad: np.ndarray
    expansion_elements: int   # size of the im2col matrix
    dw_macs: int
    dx_macs: int

    def expansion_bits(self, word_bits: int = 16) -> int:
        """Bits moved to materialise + read back the expansion."""
        return 2 * self.expansion_elements * word_bits


def conv_backward_gemm(
    x: np.ndarray,
    weights: np.ndarray,
    grad_out: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> GemmBackwardResult:
    """Backpropagate one convolution via the paper's GEMM formulation.

    Parameters
    ----------
    x:
        Layer input, (N, C, H, W).
    weights:
        Filters, (OC, C, KH, KW).
    grad_out:
        Upstream gradient, (N, OC, OH, OW).
    stride, pad:
        Convolution geometry.
    """
    if x.ndim != 4 or weights.ndim != 4 or grad_out.ndim != 4:
        raise ValueError("x, weights and grad_out must be 4-D")
    n, c, h, w = x.shape
    oc, wc, kh, kw = weights.shape
    if wc != c:
        raise ValueError(f"channel mismatch: input {c}, weights {wc}")
    if grad_out.shape[1] != oc:
        raise ValueError("grad_out channels do not match filters")
    if kh != kw:
        raise ValueError("square kernels only (as in the paper's network)")

    # Step 1: the expansion the paper describes.
    cols = im2col(x, kh, kw, stride, pad)  # (N, C*KH*KW, OH*OW)
    positions = cols.shape[2]
    if grad_out.shape[2] * grad_out.shape[3] != positions:
        raise ValueError("grad_out spatial size inconsistent with geometry")
    dout_2d = grad_out.reshape(n, oc, positions)

    # Step 2: dW = dout @ cols^T — an FC-style (Fig. 7) product, batched
    # over images and summed, as one BLAS contraction.
    weight_grad = np.tensordot(dout_2d, cols, axes=([0, 2], [0, 2])).reshape(
        weights.shape
    )
    bias_grad = dout_2d.sum(axis=(0, 2))

    # Step 3: dcols = W^T @ dout — the transposed product (Fig. 8) —
    # folded back to the input with col2im.  The (F, OC) filter matrix
    # broadcasts against the (N, OC, P) gradient stack in one GEMM.
    w_2d = weights.reshape(oc, -1)
    dcols = np.matmul(w_2d.T, dout_2d)
    input_grad = col2im(dcols, x.shape, kh, kw, stride, pad)

    kkic = c * kh * kw
    return GemmBackwardResult(
        weight_grad=weight_grad,
        bias_grad=bias_grad,
        input_grad=input_grad,
        expansion_elements=n * kkic * positions,
        dw_macs=n * oc * positions * kkic,
        dx_macs=n * oc * positions * kkic,
    )
