"""Functional (cycle-counting) systolic simulation.

Executes a convolution the way the row-stationary array does — one PE
per filter row computing 1-D row convolutions, partial sums accumulated
vertically through the segment — and counts the cycles each PE charges.
Used by the test suite to show the mapping geometry computes *exactly*
the same result as the NumPy reference convolution, which grounds the
analytic cost model in a working dataflow.

Intended for small shapes (tests and examples); the paper-scale layers
are costed analytically in :mod:`repro.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.pe import ProcessingElement

__all__ = ["FunctionalSystolicArray", "simulate_conv_rowstationary"]


@dataclass
class SimulationStats:
    """Cycle and occupancy statistics of one simulated layer."""

    total_pe_cycles: int
    wavefront_cycles: int
    pes_used: int


class FunctionalSystolicArray:
    """A pool of functional PEs arranged as one segment per filter."""

    def __init__(self, config: ArrayConfig | None = None):
        self.config = config or PAPER_ARRAY

    def conv2d(
        self, x: np.ndarray, weights: np.ndarray, stride: int = 1
    ) -> tuple[np.ndarray, SimulationStats]:
        """Row-stationary convolution of one image.

        Parameters
        ----------
        x:
            Input activations (C, H, W); pad beforehand if needed.
        weights:
            Filters (OC, C, KH, KW).
        stride:
            Convolution stride.

        Returns
        -------
        output, stats
            (OC, OH, OW) result and cycle statistics.
        """
        if x.ndim != 3 or weights.ndim != 4:
            raise ValueError("x must be (C,H,W) and weights (OC,C,KH,KW)")
        c, h, w = x.shape
        oc, wc, kh, kw = weights.shape
        if wc != c:
            raise ValueError(f"channel mismatch: input {c}, weights {wc}")
        if kh > self.config.rows:
            raise ValueError("filter taller than the array")
        oh = (h - kh) // stride + 1
        ow = (w - kw) // stride + 1
        if oh <= 0 or ow <= 0:
            raise ValueError("filter larger than input")

        # One segment: kh PEs, one per filter row.  Output rows map to
        # array columns; we iterate column batches of size `cols`.
        segment = [ProcessingElement(self.config.pe) for _ in range(kh)]
        out = np.zeros((oc, oh, ow))
        wavefront_cycles = 0
        for out_ch in range(oc):
            for row_base in range(0, oh, self.config.cols):
                rows_this_pass = min(self.config.cols, oh - row_base)
                for col_pe in range(rows_this_pass):
                    out_row = row_base + col_pe
                    acc = np.zeros(ow)
                    for ch in range(c):
                        for fr, pe in enumerate(segment):
                            pe.clear()
                            pe.load_filter_row(weights[out_ch, ch, fr])
                            pe.load_input_row(x[ch, out_row * stride + fr])
                            acc += pe.row_conv(stride=stride)
                    out[out_ch, out_row] = acc
                # Vertical psum accumulation through the segment: one
                # drain wavefront per pass.
                wavefront_cycles += kh + ow
        total_pe_cycles = sum(pe.cycles for pe in segment)
        stats = SimulationStats(
            total_pe_cycles=total_pe_cycles,
            wavefront_cycles=wavefront_cycles,
            pes_used=kh * min(self.config.cols, oh),
        )
        return out, stats


def simulate_conv_rowstationary(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    config: ArrayConfig | None = None,
) -> tuple[np.ndarray, SimulationStats]:
    """Convenience wrapper over :class:`FunctionalSystolicArray`."""
    return FunctionalSystolicArray(config).conv2d(x, weights, stride=stride)
