"""Functional (cycle-counting) systolic simulation.

Executes a convolution the way the row-stationary array does — one PE
per filter row computing 1-D row convolutions, partial sums accumulated
vertically through the segment — and reports the cycles the array
charges.  Two fidelities share one API:

``fidelity="fast"`` (default)
    Numerics come from the shared batched im2col + GEMM kernels
    (:mod:`repro.systolic.kernels`) and cycle/occupancy statistics from
    the closed-form accounting in :mod:`repro.systolic.cycles`.  This
    path runs paper-scale layers — a full modified-AlexNet forward pass
    costs seconds, and whole fleet observation batches are costed in
    one ``conv2d(x: (N, C, H, W))`` call.

``fidelity="pe"``
    The loop-level oracle: every row convolution goes through a
    :class:`~repro.systolic.pe.ProcessingElement`, charging cycles as
    it executes.  Intended for validation; the fast path is proven to
    reproduce its outputs and counters exactly over a property-tested
    shape grid (``tests/test_systolic_fast_equivalence.py``), and
    ``benchmarks/test_systolic_throughput.py`` pins the fast path's
    speedup over it.

Wavefront accounting: each column pass drains one psum wavefront.  A
pass occupying ``q`` array columns charges ``kh + ow + q - 1`` cycles —
``kh`` to flow down the segment, ``ow`` to stream the output row, plus
one cycle of stagger per additional occupied column.  (Earlier versions
charged a flat ``kh + ow`` per pass, over- or under-counting whenever a
final pass filled only part of the array.)

Load accounting: each column pass loads the segment's filter rows once
per channel (one broadside cycle per row), and the rows stay resident
while the whole batch streams through — so conv load cycles amortise
across a batch exactly like FC tile loads, making conv cycles per
sample strictly decreasing in batch size (the Fig. 13 effect).
"""

from __future__ import annotations

import numpy as np

from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.cycles import SimulationStats, conv_rowstationary_stats
from repro.systolic.kernels import conv2d_gemm
from repro.systolic.pe import ProcessingElement

__all__ = [
    "FIDELITIES",
    "SimulationStats",
    "FunctionalSystolicArray",
    "simulate_conv_rowstationary",
]

#: Recognised simulation fidelities.
FIDELITIES = ("fast", "pe")


def check_fidelity(fidelity: str) -> None:
    """Raise ``ValueError`` unless ``fidelity`` is a recognised mode."""
    if fidelity not in FIDELITIES:
        raise ValueError(f"fidelity must be one of {FIDELITIES}, got {fidelity!r}")


class FunctionalSystolicArray:
    """A pool of functional PEs arranged as one segment per filter.

    Parameters
    ----------
    config:
        Array geometry (defaults to the paper's 32x32 grid).
    fidelity:
        ``"fast"`` for the vectorised GEMM path with closed-form cycle
        accounting (default), ``"pe"`` for the loop-level PE oracle.
    """

    def __init__(self, config: ArrayConfig | None = None, fidelity: str = "fast"):
        check_fidelity(fidelity)
        self.config = config or PAPER_ARRAY
        self.fidelity = fidelity

    def conv2d(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        stride: int = 1,
        pad: int = 0,
    ) -> tuple[np.ndarray, SimulationStats]:
        """Row-stationary convolution of one image or a batch.

        Parameters
        ----------
        x:
            Input activations, (C, H, W) for one image or (N, C, H, W)
            for a batch; a batch repeats the schedule per image, so the
            cycle counters scale linearly with N.
        weights:
            Filters (OC, C, KH, KW).
        stride:
            Convolution stride.
        pad:
            Symmetric zero padding applied before the array sees the
            input (the global buffer pads on the fly; the array charges
            for the padded extents).

        Returns
        -------
        output, stats
            (OC, OH, OW) or (N, OC, OH, OW) result matching the input
            rank, and cycle statistics.
        """
        x = np.asarray(x, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        single = x.ndim == 3
        if single:
            x = x[None]
        if x.ndim != 4 or weights.ndim != 4:
            raise ValueError("x must be (C,H,W) or (N,C,H,W) and weights (OC,C,KH,KW)")
        n, c, h, w = x.shape
        oc, wc, kh, kw = weights.shape
        if wc != c:
            raise ValueError(f"channel mismatch: input {c}, weights {wc}")
        if kh > self.config.rows:
            raise ValueError("filter taller than the array")
        if pad < 0:
            raise ValueError("pad must be non-negative")
        oh = (h + 2 * pad - kh) // stride + 1
        ow = (w + 2 * pad - kw) // stride + 1
        if oh <= 0 or ow <= 0:
            raise ValueError("filter larger than input")

        if self.fidelity == "fast":
            out = conv2d_gemm(x, weights, stride=stride, pad=pad)
            stats = conv_rowstationary_stats(
                c, h + 2 * pad, w + 2 * pad, oc, kh, kw,
                stride=stride, config=self.config, batch=n,
            )
        else:
            if pad > 0:
                x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
            out, stats = self._conv2d_pe(x, weights, stride, oh, ow)
        return (out[0] if single else out), stats

    def _conv2d_pe(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        stride: int,
        oh: int,
        ow: int,
    ) -> tuple[np.ndarray, SimulationStats]:
        """The loop-level oracle: one segment of kh PEs, one pass per
        column batch, with filter rows resident across the batch."""
        n, c, _, _ = x.shape
        oc, _, kh, _ = weights.shape
        segment = [ProcessingElement(self.config.pe) for _ in range(kh)]
        cols = self.config.cols
        out = np.zeros((n, oc, oh, ow))
        wavefront_cycles = 0
        for out_ch in range(oc):
            for row_base in range(0, oh, cols):
                rows_this_pass = min(cols, oh - row_base)
                # Row-stationary residency, extended across the batch:
                # each PE loads its filter row once (one broadside load
                # cycle) and keeps it in the RF while *every* image's
                # input rows stream past it — the conv analogue of the
                # FC tile reuse, so load cycles do not scale with n.
                for ch in range(c):
                    for fr, pe in enumerate(segment):
                        pe.clear()
                        pe.load_filter_row(weights[out_ch, ch, fr])
                        for img in range(n):
                            image = x[img]
                            for col_pe in range(rows_this_pass):
                                out_row = row_base + col_pe
                                pe.clear_psum()
                                pe.load_input_row(image[ch, out_row * stride + fr])
                                out[img, out_ch, out_row] += pe.row_conv(
                                    stride=stride
                                )
                # Vertical psum accumulation through the segment: one
                # drain wavefront per pass *per image*, staggered one
                # cycle per occupied column (see module docstring).
                wavefront_cycles += n * (kh + ow + rows_this_pass - 1)
        stats = SimulationStats(
            total_pe_cycles=sum(pe.cycles for pe in segment),
            wavefront_cycles=wavefront_cycles,
            pes_used=kh * min(cols, oh),
            load_cycles=sum(pe.load_cycles for pe in segment),
        )
        return out, stats


def simulate_conv_rowstationary(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    config: ArrayConfig | None = None,
    pad: int = 0,
    fidelity: str = "fast",
) -> tuple[np.ndarray, SimulationStats]:
    """Convenience wrapper over :class:`FunctionalSystolicArray`."""
    return FunctionalSystolicArray(config, fidelity=fidelity).conv2d(
        x, weights, stride=stride, pad=pad
    )
