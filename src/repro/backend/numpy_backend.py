"""Float NumPy execution backend — the zero-overhead default."""

from __future__ import annotations

import numpy as np

from repro.backend.base import ExecutionBackend, StepCost, register_backend
from repro.nn.network import Network

__all__ = ["NumpyBackend"]


@register_backend("numpy")
class NumpyBackend(ExecutionBackend):
    """Float64 inference straight through :meth:`Network.predict`.

    Bitwise-identical to calling the network directly (the agent's
    historical behaviour), with a zero :class:`StepCost` — there is no
    hardware model on this path, so fleet reports carry no cycle budget.
    There is no weight snapshot either: every forward reads the live
    network, so a weight bus in front of this backend has no staleness.
    """

    has_snapshot = False

    def __init__(self, network: Network):
        self.network = network

    def forward_batch(self, states: np.ndarray) -> tuple[np.ndarray, StepCost]:
        states = np.asarray(states, dtype=np.float64)
        q_values = self.network.predict(states)
        return q_values, StepCost(backend=self.name, states=states.shape[0])
