"""16-bit fixed-point execution backend (numerics only).

Answers "what Q values does the quantised datapath produce" without any
cycle model: weights quantise once into the weight format, activations
re-quantise after every layer (:class:`~repro.nn.quantize.QuantizedNetwork`
semantics), and the batched forward runs through the shared GEMM kernels.
For the same numerics *with* the systolic cycle accounting, use
:class:`~repro.backend.systolic_backend.SystolicBackend` — the two
produce bitwise-identical Q values.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ExecutionBackend, StepCost, register_backend
from repro.fixedpoint.qformat import QFormat, Q2_13, Q8_8
from repro.nn.network import Network
from repro.nn.quantize import QuantizedNetwork

__all__ = ["QuantizedBackend"]


@register_backend("quantized")
class QuantizedBackend(ExecutionBackend):
    """Fixed-point inference via :meth:`QuantizedNetwork.predict_batch`.

    Parameters
    ----------
    network:
        The trained float network (not modified).
    weight_format / activation_format:
        Q formats for weights and inter-layer activations; the defaults
        are the paper's 16-bit corners (Q2.13 weights, Q8.8 sums).
    """

    def __init__(
        self,
        network: Network,
        weight_format: QFormat = Q2_13,
        activation_format: QFormat = Q8_8,
    ):
        self.network = network
        self.weight_format = weight_format
        self.quantized = QuantizedNetwork(
            network,
            weight_format=weight_format,
            activation_format=activation_format,
        )

    def forward_batch(self, states: np.ndarray) -> tuple[np.ndarray, StepCost]:
        states = np.asarray(states, dtype=np.float64)
        q_values = self.quantized.predict_batch(states)
        return q_values, StepCost(backend=self.name, states=states.shape[0])

    def sync(self) -> None:
        """Re-quantise after an online weight update (SRAM write-back)."""
        self.quantized.refresh_quantized_state()

    # ------------------------------------------------------------------
    # Serving-buffer seam (fault injection / detection)
    # ------------------------------------------------------------------
    def weight_buffers(self) -> dict[str, np.ndarray]:
        """The quantised value snapshot ``predict_batch`` reads."""
        return self.quantized._quantized_state

    def corrupt_weight_bit(self, name: str, index: int, bit: int) -> None:
        """Flip one stored bit of parameter ``name`` (SRAM soft error).

        The snapshot holds quantised *values*; the upset round-trips
        the element through its raw code, flips the bit there, and
        writes the decoded value back — the same code the hardware
        stores.
        """
        from repro.faults.recovery import flip_raw_bit

        fmt = self.weight_format
        flat = self.quantized._quantized_state[name].reshape(-1)
        raw = flip_raw_bit(int(fmt.to_raw(flat[index])), bit, fmt)
        flat[index] = float(fmt.from_raw(raw))
