"""16-bit fixed-point execution backend (numerics only).

Answers "what Q values does the quantised datapath produce" without any
cycle model: weights quantise once into the weight format, activations
re-quantise after every layer (:class:`~repro.nn.quantize.QuantizedNetwork`
semantics), and the batched forward runs through the shared GEMM kernels.
For the same numerics *with* the systolic cycle accounting, use
:class:`~repro.backend.systolic_backend.SystolicBackend` — the two
produce bitwise-identical Q values.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ExecutionBackend, StepCost, register_backend
from repro.fixedpoint.qformat import QFormat, Q2_13, Q8_8
from repro.nn.network import Network
from repro.nn.quantize import QuantizedNetwork

__all__ = ["QuantizedBackend"]


@register_backend("quantized")
class QuantizedBackend(ExecutionBackend):
    """Fixed-point inference via :meth:`QuantizedNetwork.predict_batch`.

    Parameters
    ----------
    network:
        The trained float network (not modified).
    weight_format / activation_format:
        Q formats for weights and inter-layer activations; the defaults
        are the paper's 16-bit corners (Q2.13 weights, Q8.8 sums).
    """

    def __init__(
        self,
        network: Network,
        weight_format: QFormat = Q2_13,
        activation_format: QFormat = Q8_8,
    ):
        self.network = network
        self.quantized = QuantizedNetwork(
            network,
            weight_format=weight_format,
            activation_format=activation_format,
        )

    def forward_batch(self, states: np.ndarray) -> tuple[np.ndarray, StepCost]:
        states = np.asarray(states, dtype=np.float64)
        q_values = self.quantized.predict_batch(states)
        return q_values, StepCost(backend=self.name, states=states.shape[0])

    def sync(self) -> None:
        """Re-quantise after an online weight update (SRAM write-back)."""
        self.quantized.refresh_quantized_state()
