"""Multi-array execution backend: K systolic arrays behind one seam.

The ROADMAP's "serves heavy traffic" direction needs more than one
32x32 array.  :class:`ShardedBackend` composes K child backends
(default :class:`~repro.backend.systolic_backend.SystolicBackend`s,
one per simulated array) behind the ordinary
``forward_batch(states) -> (q_values, cost)`` seam, under two shard
policies:

* ``shard="sample"`` — data parallelism: the observation batch splits
  into K contiguous chunks (:func:`numpy.array_split` semantics, so
  uneven batches work) and each array runs the *whole* network over
  its chunk with a full weight copy.  Only the Q-value gather crosses
  arrays.
* ``shard="layer"`` — tensor parallelism: every array holds ``1/K`` of
  each layer's weights (conv filters / FC output neurons, contiguous
  slices) and computes that slice of the layer's output from the full
  input activation; after every parametric layer the slices gather
  into the full activation, which is re-broadcast to all arrays for
  the next layer.

Both policies are **bitwise-equal** to the single-array path when
``quantized=True`` (the default): every sample's and every output
channel's arithmetic is the exact same integer datapath — splitting a
batch or slicing an output dimension removes no term and reorders no
per-element sum — and the re-quantisation between layers is
elementwise, so it commutes with the concatenation that merges shard
outputs.  (``quantized=False`` float numerics agree only to round-off
under sample sharding, because BLAS may re-associate sums for
different batch shapes.)

Costs come back as a :class:`~repro.backend.base.ShardCost`:
``layer_cycles`` stay *work* (summed over arrays — note each array
charges its own FC tile loads, so sharded work slightly exceeds
single-array work), ``shard_cycles`` are per-array totals,
``critical_path_cycles`` is the wall-clock of the parallel schedule
(max over arrays per parallel region, plus merge traffic), and
``merge_cycles`` charges one cycle per element that crosses an
inter-array link (gathers, and layer-sharding's re-broadcasts).
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend.base import ExecutionBackend, ShardCost, register_backend
from repro.backend.systolic_backend import SystolicBackend
from repro.faults.injector import FAULTS
from repro.obs.probes import PROBE
from repro.fixedpoint.qformat import QFormat, Q2_13, Q8_8
from repro.nn.layers import Conv2D, Dense
from repro.nn.network import Network
from repro.parallel.pool import resolve_workers
from repro.systolic.array import ArrayConfig
from repro.systolic.functional import FunctionalSystolicArray

__all__ = ["ShardedBackend", "SHARD_POLICIES"]

#: Supported shard policies.
SHARD_POLICIES = ("sample", "layer")


def _argmax(cycles: list[int]) -> int:
    """Index of the slowest array (ties toward the lowest index)."""
    if not cycles:
        return 0
    return max(range(len(cycles)), key=cycles.__getitem__)


def _slice_layer(layer, lo: int, hi: int):
    """A copy of ``layer`` holding output slice ``[lo:hi)`` of its weights.

    Conv2D slices the filter axis, Dense the output-feature axis; the
    input dimension stays full because layer sharding broadcasts the
    whole activation to every array.  Weight *values* are placeholders
    until the first :meth:`ShardedBackend.sync` copies the live slice
    in (the model-download broadcast).
    """
    if isinstance(layer, Conv2D):
        sliced = Conv2D(
            layer.in_channels, hi - lo, layer.kernel_size,
            stride=layer.stride, pad=layer.pad, name=layer.name,
        )
    elif isinstance(layer, Dense):
        sliced = Dense(layer.in_features, hi - lo, name=layer.name)
    else:  # pragma: no cover - guarded by the caller
        raise TypeError(f"cannot shard {type(layer).__name__}")
    return sliced


def _copy_slice(src, dst, lo: int, hi: int) -> None:
    """Copy output slice ``[lo:hi)`` of ``src``'s weights into ``dst``."""
    if isinstance(src, Conv2D):
        dst.weight.value[...] = src.weight.value[lo:hi]
    else:
        dst.weight.value[...] = src.weight.value[:, lo:hi]
    dst.bias.value[...] = src.bias.value[lo:hi]


@register_backend("sharded")
class ShardedBackend(ExecutionBackend):
    """K simulated systolic arrays composed behind one backend.

    Parameters
    ----------
    network:
        The trained float network (single source of weights).
    shards:
        Number of arrays K (>= 1).
    shard:
        ``"sample"`` (split the batch) or ``"layer"`` (split conv
        filters / FC output neurons).
    config / fidelity / quantized / weight_format / activation_format:
        Passed through to every child :class:`SystolicBackend` — each
        array runs the same datapath the single-array backend models.
    workers:
        Host process-pool size for sample-policy child forwards
        (``"auto"`` = one per CPU, capped at K).  ``1`` (default) is
        the serial path, byte-for-byte today's behaviour.  Parallel
        dispatch sends the *same* chunks to the same pure child code
        in pool workers and replays the accounting in shard order, so
        results and cost records are bitwise identical at any worker
        count.  The layer policy always runs serially — its layers
        chain through a gather/broadcast data dependency, so there is
        no host-side parallelism to harvest.
    """

    def __init__(
        self,
        network: Network,
        shards: int = 2,
        shard: str = "sample",
        config: ArrayConfig | None = None,
        fidelity: str = "fast",
        quantized: bool = True,
        weight_format: QFormat = Q2_13,
        activation_format: QFormat = Q8_8,
        workers: int | str = 1,
    ):
        if shards <= 0:
            raise ValueError("shards must be positive")
        if shard not in SHARD_POLICIES:
            raise ValueError(
                f"unknown shard policy {shard!r}; expected one of {SHARD_POLICIES}"
            )
        self.network = network
        self.shards = shards
        self.shard = shard
        self.fidelity = fidelity
        self.quantized = quantized
        self.activation_format = activation_format
        child_kwargs = dict(
            config=config, fidelity=fidelity, quantized=quantized,
            weight_format=weight_format, activation_format=activation_format,
        )
        self._child_kwargs = child_kwargs
        #: Child position -> original array index (identity until a
        #: crash failover rebuilds the layer plan over the survivors).
        self._position_to_shard = list(range(shards))
        #: Lazily built float fallback for all-arrays-lost degradation.
        self._fallback = None
        self._chaos_forward = 0
        self.workers = resolve_workers(workers, tasks=shards)
        #: Bumped whenever the serving weights change (sync, chaos bit
        #: flips, buffer restore); the pool executor ships weight deltas
        #: to workers only when its shipped version falls behind.
        self._weights_version = 0
        self._executor = None
        if shard == "sample":
            # Data parallelism: every array downloads the full model.
            # All K copies are byte-identical, so one simulated child
            # stands in for every array (the simulation quantises once
            # per sync, not K times) — the K entries are the same
            # object, indexed per-array for the forward loop.
            self.children = [SystolicBackend(network, **child_kwargs)] * shards
            self._plan = None
        else:
            self._plan = self._build_layer_plan(network, shards)
            self.children = [
                SystolicBackend(net, **child_kwargs)
                for net in self._shard_networks
            ]
            self.sync()
        self.config = self.children[0].config

    # ------------------------------------------------------------------
    def _build_layer_plan(self, network: Network, shards: int):
        """Per-layer shard assignments for the ``layer`` policy.

        Returns ``{layer_index: [(array, sliced_layer, lo, hi), ...]}``
        covering every parametric layer, and stores one sliced
        sub-network per array (arrays left idle by a layer narrower
        than K simply get no slice of it).
        """
        plan: dict[int, list[tuple[int, object, int, int]]] = {}
        per_array_layers: list[list] = [[] for _ in range(shards)]
        for index, layer in network.parametric_layers():
            width = (
                layer.out_channels
                if isinstance(layer, Conv2D)
                else layer.out_features
            )
            bounds = np.linspace(0, width, shards + 1).astype(int)
            assignments = []
            for k in range(shards):
                lo, hi = int(bounds[k]), int(bounds[k + 1])
                if hi <= lo:
                    continue  # layer narrower than K: array k sits idle
                sliced = _slice_layer(layer, lo, hi)
                assignments.append((k, sliced, lo, hi))
                per_array_layers[k].append(sliced)
            plan[index] = assignments
        self._shard_networks = [
            Network(layers or [Dense(1, 1, name=f"idle{k}")],
                    name=f"{network.name}.shard{k}")
            for k, layers in enumerate(per_array_layers)
        ]
        return plan

    def sync(self) -> None:
        """Broadcast the live float weights to every array's datapath.

        Sample sharding re-quantises the full weight set once — the K
        per-array copies are byte-identical, so the children share the
        quantised operands.  Layer sharding copies each array's slice
        out of the live network first (the sliced sub-networks own
        their parameters), then re-quantises it.
        """
        self._weights_version += 1
        if self.shard == "sample":
            self.children[0].sync()
            return
        for index, assignments in self._plan.items():
            layer = self.network.layers[index]
            for _k, sliced, lo, hi in assignments:
                _copy_slice(layer, sliced, lo, hi)
        for child in self.children:
            child.sync()

    # ------------------------------------------------------------------
    # Serving-buffer seam (fault injection / detection)
    # ------------------------------------------------------------------
    @property
    def weight_format(self):
        return self.children[0].weight_format

    def weight_buffers(self) -> dict[str, np.ndarray]:
        """The children's serving buffers (prefixed per array for layer
        sharding; sample sharding's arrays share one physical copy)."""
        if self.shard == "sample":
            return self.children[0].weight_buffers()
        merged: dict[str, np.ndarray] = {}
        for k, child in enumerate(self.children):
            for name, arr in child.weight_buffers().items():
                merged[f"shard{k}/{name}"] = arr
        return merged

    def corrupt_weight_bit(self, name: str, index: int, bit: int) -> None:
        self._weights_version += 1
        if self.shard == "sample":
            self.children[0].corrupt_weight_bit(name, index, bit)
            return
        prefix, _, rest = name.partition("/")
        self.children[int(prefix[len("shard"):])].corrupt_weight_bit(
            rest, index, bit
        )

    def _refresh_weight_values(self) -> None:
        self._weights_version += 1
        if self.shard == "sample":
            self.children[0]._refresh_weight_values()
            return
        for child in self.children:
            child._refresh_weight_values()

    # ------------------------------------------------------------------
    # Fault handling (FAULTS seam active only)
    # ------------------------------------------------------------------
    def _active_shards(self) -> list[int]:
        """Alive array indices, processing any newly due crash faults."""
        if not FAULTS.enabled:
            return list(range(self.shards))
        inj = FAULTS.injector
        for k in inj.due_crashes():
            if k < self.shards:
                self._kill_shard(k, inj)
        return [k for k in range(self.shards) if k not in inj.dead_shards]

    def _kill_shard(self, k: int, inj) -> None:
        """Process one scheduled crash: detect, then fail over.

        Detection is the per-shard health check — the scheduler notices
        the array stopped answering after ``health_check_timeout_cycles``
        (charged as recovery overhead).  Recovery remaps the dead
        array's work onto the survivors: sample sharding just re-splits
        the batch; layer sharding rebuilds the slice plan over the
        surviving arrays and re-broadcasts the weights.  With no
        survivors the backend degrades to the float numpy fallback.
        """
        inj.kill(k)
        rec = inj.record("shard.crash", target=f"shard{k}", detail="scheduled")
        inj.add_recovery_cycles(inj.plan.health_check_timeout_cycles)
        inj.mark_detected(rec)
        alive = [i for i in range(self.shards) if i not in inj.dead_shards]
        with PROBE.span("recovery", kind="shard.failover", shard=k):
            if not alive:
                degraded = inj.record(
                    "fleet.degraded",
                    target=self.name,
                    detail="all arrays lost",
                )
                inj.mark_detected(degraded)
                inj.mark_recovered(degraded, detail="serving from numpy fallback")
            elif self.shard == "layer":
                self._rebuild_layer_shards(alive)
        inj.mark_recovered(
            rec,
            detail=(
                "degraded to numpy fallback"
                if not alive
                else f"failover onto {len(alive)} surviving arrays"
            ),
        )

    def _rebuild_layer_shards(self, alive: list[int]) -> None:
        """Re-slice every layer across the surviving arrays."""
        self._plan = self._build_layer_plan(self.network, len(alive))
        self.children = [
            SystolicBackend(net, **self._child_kwargs)
            for net in self._shard_networks
        ]
        self._position_to_shard = list(alive)
        self.sync()

    def _forward_degraded(self, x: np.ndarray) -> tuple[np.ndarray, ShardCost]:
        """All arrays lost: float inference on the host, zero array cost."""
        if self._fallback is None:
            from repro.backend.numpy_backend import NumpyBackend

            self._fallback = NumpyBackend(self.network)
        with PROBE.span("shard.forward", shard=-1, states=x.shape[0]) as sp:
            q_values, _ = self._fallback.forward_batch(x)
            sp.add_cycles(0)
        FAULTS.injector.note_degraded(x.shape[0])
        return q_values, ShardCost(
            backend=self.name, states=x.shape[0], macs=0, layer_cycles={},
            shards=self.shards, shard_cycles=(0,) * self.shards,
            critical_path_cycles=0, merge_cycles=0, critical_shard_index=0,
        )

    def _chaos_extra(self, shard: int, base_cycles: int) -> int:
        """Extra cycles this forward charges shard ``shard`` for faults.

        Transient faults retry with exponential backoff (each failed
        attempt re-burns the shard's forward plus a timeout); stragglers
        multiply the (possibly retried) total.  Both are detected and
        recovered within the same forward — they stretch the critical
        path rather than corrupting output.
        """
        inj = FAULTS.injector
        plan = inj.plan
        extra = 0
        attempts = inj.transient_attempts(self._chaos_forward, shard)
        if attempts:
            retry = 0
            for attempt in range(attempts):
                retry += base_cycles + int(
                    plan.retry_timeout_cycles * plan.retry_backoff ** attempt
                )
            rec = inj.record(
                "shard.transient",
                target=f"shard{shard}",
                detail=f"failed attempts={attempts}",
            )
            inj.mark_detected(rec)
            inj.mark_recovered(rec, detail=f"retry succeeded after {attempts}")
            inj.add_recovery_cycles(retry)
            extra += retry
        factor = inj.straggler_factor(self._chaos_forward, shard)
        if factor > 1.0:
            slow = int((base_cycles + extra) * (factor - 1.0))
            rec = inj.record(
                "shard.straggler",
                target=f"shard{shard}",
                detail=f"factor={factor:g}",
            )
            inj.mark_detected(rec)
            inj.mark_recovered(rec, detail="absorbed by the schedule")
            extra += slow
        return extra

    # ------------------------------------------------------------------
    def train_cost(
        self,
        batch_size: int,
        state_shape: tuple[int, ...],
        first_trainable: int = 0,
    ) -> ShardCost:
        """Data-parallel training step across the K arrays.

        The training batch splits into K contiguous chunks
        (``array_split`` semantics, like sample-sharded inference);
        every array runs its chunk's forward and backward GEMMs against
        a full weight copy, then the per-array weight gradients
        all-reduce to the root array — ``merge_cycles`` charges one
        cycle per gradient element shipped by each non-root active
        array.  Training shards data-parallel under *both* shard
        policies: a model-parallel backward for the layer policy is a
        ROADMAP follow-up.
        """
        from repro.systolic.training import network_training_step_cost

        alive = (
            [k for k in range(self.shards) if k not in FAULTS.injector.dead_shards]
            if FAULTS.enabled
            else list(range(self.shards))
        )
        if not alive:
            # Every array lost: training stays in host float, charging
            # the (gone) arrays nothing.
            return ShardCost(
                backend=self.name, states=batch_size,
                shards=self.shards, shard_cycles=(0,) * self.shards,
            )
        sizes = [
            len(chunk)
            for chunk in np.array_split(np.arange(batch_size), len(alive))
        ]
        shard_cycles = [0] * self.shards
        layer_cycles: dict[str, int] = {}
        macs = 0
        active = 0
        for k, size in zip(alive, sizes):
            if size == 0:
                continue  # batch narrower than K: array k sits idle
            active += 1
            step = network_training_step_cost(
                self.network, state_shape, size,
                config=self.config, first_trainable=first_trainable,
            )
            shard_cycles[k] = step.total_cycles
            macs += step.total_macs
            for layer in step.layers:
                name = layer.name
                layer_cycles[name] = layer_cycles.get(name, 0) + layer.total_cycles
        grad_elements = sum(p.size for p in self.network.parameters(first_trainable))
        merge = max(active - 1, 0) * grad_elements
        critical = max(shard_cycles) + merge
        return ShardCost(
            backend=self.name, states=batch_size, macs=macs,
            layer_cycles=layer_cycles, shards=self.shards,
            shard_cycles=tuple(shard_cycles),
            critical_path_cycles=critical, merge_cycles=merge,
            critical_shard_index=_argmax(shard_cycles),
        )

    def _requantize(self, x: np.ndarray) -> np.ndarray:
        return self.activation_format.quantize(x) if self.quantized else x

    def _shard_executor(self):
        """The pool executor for sample-policy forwards, built on first
        parallel dispatch (workers spawn only when actually used)."""
        if self._executor is None:
            from repro.parallel.dispatch import ShardExecutor

            self._executor = ShardExecutor(self, self.workers)
        return self._executor

    def forward_batch(self, states: np.ndarray) -> tuple[np.ndarray, ShardCost]:
        x = np.asarray(states, dtype=np.float64)
        if x.ndim != 4:
            raise ValueError(f"expected an (N, C, H, W) state batch, got {x.shape}")
        if FAULTS.enabled:
            self._chaos_forward = FAULTS.injector.note_forward()
        if self.shard == "sample":
            return self._forward_sample(x)
        return self._forward_layer_sharded(x)

    def _forward_sample(self, x: np.ndarray) -> tuple[np.ndarray, ShardCost]:
        """Each array runs the whole network over its batch chunk.

        The batch splits over the *surviving* arrays — after a crash
        failover the same work re-splits onto fewer chunks, so each
        survivor's chunk (and cycle bill) grows by ~K/(K-1).  With every
        array alive the split is exactly the original one.
        """
        n = x.shape[0]
        active = self._active_shards()
        if not active:
            return self._forward_degraded(x)
        chunks = np.array_split(x, len(active))
        jobs = [
            (k, chunk)
            for k, chunk in zip(active, chunks)
            if chunk.shape[0] > 0  # batch narrower than K: array k idles
        ]
        if self.workers > 1 and len(jobs) > 1:
            # Parallel path: pure child forwards run in pool workers
            # (PROBE/FAULTS permanently off there); the workers time
            # themselves and the spans/chaos accounting replay below in
            # shard order, so both the numerics and every ledger match
            # the serial loop bitwise.
            results = self._shard_executor().forward_chunks(
                [chunk for _k, chunk in jobs]
            )
            forwards = [
                (k, chunk, q_k, cost_k, wall_ns, worker)
                for (k, chunk), (q_k, cost_k, wall_ns, worker)
                in zip(jobs, results)
            ]
        else:
            forwards = []
            for k, chunk in jobs:
                start = time.perf_counter_ns()
                q_k, cost_k = self.children[k].forward_batch(chunk)
                forwards.append(
                    (k, chunk, q_k, cost_k,
                     time.perf_counter_ns() - start, None)
                )
        outputs = []
        shard_cycles = [0] * self.shards
        layer_cycles: dict[str, int] = {}
        macs = 0
        merge = 0
        for k, chunk, q_k, cost_k, wall_ns, worker in forwards:
            PROBE.record_span(
                "shard.forward", wall_ns, cycles=cost_k.total_cycles,
                worker=worker, shard=k, states=chunk.shape[0],
            )
            outputs.append(q_k)
            cycles_k = cost_k.total_cycles
            if FAULTS.enabled:
                cycles_k += self._chaos_extra(k, cycles_k)
            shard_cycles[k] = cycles_k
            macs += cost_k.macs
            for name, cycles in cost_k.layer_cycles.items():
                layer_cycles[name] = layer_cycles.get(name, 0) + cycles
            if k != active[0]:
                # Gathering array k's Q rows to the root array: one
                # element per link cycle (the root's rows stay put).
                merge += q_k.size
        q_values = np.concatenate(outputs, axis=0)
        critical = max(shard_cycles) + merge
        return q_values, ShardCost(
            backend=self.name, states=n, macs=macs, layer_cycles=layer_cycles,
            shards=self.shards, shard_cycles=tuple(shard_cycles),
            critical_path_cycles=critical, merge_cycles=merge,
            critical_shard_index=_argmax(shard_cycles),
        )

    def _forward_layer_sharded(self, x: np.ndarray) -> tuple[np.ndarray, ShardCost]:
        """Every array computes its output slice of each layer.

        Layers execute in sequence (true data dependency); within a
        layer the K slices run in parallel, so the layer contributes
        its *slowest* slice to the critical path.  After each
        parametric layer the slices gather to a hub array — the first
        array assigned to the layer — into the full activation
        (concatenation along the channel/feature axis reproduces the
        original output order — slices are contiguous); elementwise /
        pooling layers run there.  When the next parametric layer is
        reached, the activation it consumes — post-pooling, so the
        tensor that actually moves — is broadcast from the hub to the
        *other* arrays assigned to it (nothing after the last layer:
        the Q values are already gathered; nothing for the first, whose
        input arrives from the host).  Both transfers charge one cycle
        per element moved.
        """
        n = x.shape[0]
        if FAULTS.enabled and not self._active_shards():
            return self._forward_degraded(x)
        x = self._requantize(x)
        shard_cycles = [0] * self.shards
        layer_cycles: dict[str, int] = {}
        macs = 0
        merge = 0
        critical = 0
        hub: int | None = None
        pe_sim = (
            FunctionalSystolicArray(self.config, fidelity="pe")
            if self.fidelity == "pe"
            else None
        )

        def charge(name: str, cycles: int) -> None:
            while name in layer_cycles:
                name += "'"
            layer_cycles[name] = cycles

        for index, layer in enumerate(self.network.layers):
            assignments = self._plan.get(index)
            if not assignments:
                # ReLU / pooling / flatten run on the merged activation
                # (vector units / comparators) — no MAC cycles, exactly
                # as on the single-array path.
                x = layer.forward(x, training=False)
            else:
                if hub is not None:
                    # Broadcast the hub's activation to the other
                    # arrays computing this layer.
                    consumers = {k for k, *_rest in assignments}
                    merge += len(consumers - {hub}) * x.size
                parts = []
                slice_cycles = []
                work = 0
                for k, sliced, _lo, _hi in assignments:
                    orig = self._position_to_shard[k]
                    with PROBE.span(
                        "shard.forward", shard=orig, layer=layer.name
                    ) as sp:
                        out_k, cycles_k, macs_k = self.children[k].forward_layer(
                            sliced, x, pe_sim
                        )
                        sp.add_cycles(cycles_k)
                    parts.append(out_k)
                    shard_cycles[orig] += cycles_k
                    slice_cycles.append(cycles_k)
                    work += cycles_k
                    macs += macs_k
                x = np.concatenate(parts, axis=1)
                charge(layer.name, work)
                # Gather every non-hub slice into the full activation.
                hub = assignments[0][0]
                merge += x.size - parts[0].size
                critical += max(slice_cycles)
            x = self._requantize(x)
        critical += merge
        if FAULTS.enabled:
            # Transient retries and stragglers stretch each array's
            # per-layer slices; charged conservatively to the critical
            # path (every layer barrier waits on its slowest slice).
            for orig in self._position_to_shard:
                if shard_cycles[orig] == 0:
                    continue
                extra = self._chaos_extra(orig, shard_cycles[orig])
                shard_cycles[orig] += extra
                critical += extra
        return x, ShardCost(
            backend=self.name, states=n, macs=macs, layer_cycles=layer_cycles,
            shards=self.shards, shard_cycles=tuple(shard_cycles),
            critical_path_cycles=critical, merge_cycles=merge,
            critical_shard_index=_argmax(shard_cycles),
        )
