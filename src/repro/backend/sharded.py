"""Multi-array execution backend: K systolic arrays behind one seam.

The ROADMAP's "serves heavy traffic" direction needs more than one
32x32 array.  :class:`ShardedBackend` composes K child backends
(default :class:`~repro.backend.systolic_backend.SystolicBackend`s,
one per simulated array) behind the ordinary
``forward_batch(states) -> (q_values, cost)`` seam, under two shard
policies:

* ``shard="sample"`` — data parallelism: the observation batch splits
  into K contiguous chunks (:func:`numpy.array_split` semantics, so
  uneven batches work) and each array runs the *whole* network over
  its chunk with a full weight copy.  Only the Q-value gather crosses
  arrays.
* ``shard="layer"`` — tensor parallelism: every array holds ``1/K`` of
  each layer's weights (conv filters / FC output neurons, contiguous
  slices) and computes that slice of the layer's output from the full
  input activation; after every parametric layer the slices gather
  into the full activation, which is re-broadcast to all arrays for
  the next layer.
* ``shard="pipeline"`` — pipeline parallelism: the network's layers
  partition into contiguous *stages*, each stage owned by one or more
  arrays (heterogeneous widths: the stage assignment is balanced on
  the closed-form cycle oracle, and a hot stage may be replicated
  across several arrays, which then take micro-batches round-robin).
  The batch streams through the stages in ``pipeline_chunk``-sized
  micro-batches; the schedule's fill/drain bubbles are charged
  explicitly (``ShardCost.fill_drain_cycles``) and only the
  stage-boundary activations cross arrays — so it keeps scaling where
  the layer policy's per-layer all-gather collapses.

All policies are **bitwise-equal** to the single-array path when
``quantized=True`` (the default): every sample's and every output
channel's arithmetic is the exact same integer datapath — splitting a
batch or slicing an output dimension removes no term and reorders no
per-element sum — and the re-quantisation between layers is
elementwise, so it commutes with the concatenation that merges shard
outputs.  (``quantized=False`` float numerics agree only to round-off
under sample sharding, because BLAS may re-associate sums for
different batch shapes.)

Costs come back as a :class:`~repro.backend.base.ShardCost`:
``layer_cycles`` stay *work* (summed over arrays — note each array
charges its own FC tile loads, so sharded work slightly exceeds
single-array work), ``shard_cycles`` are per-array totals,
``critical_path_cycles`` is the wall-clock of the parallel schedule
(max over arrays per parallel region, plus merge traffic), and
``merge_cycles`` charges every element that crosses an inter-array
link (gathers, layer-sharding's re-broadcasts, pipeline stage
hand-offs) on the backend's
:class:`~repro.systolic.noc.NocModel` — the default ``flat`` topology
is exactly the legacy one-cycle-per-element model, while ``ring`` and
``mesh`` pay real hop counts over 128-bit links.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.backend.base import ExecutionBackend, ShardCost, register_backend
from repro.backend.systolic_backend import SystolicBackend
from repro.faults.injector import FAULTS
from repro.obs.probes import PROBE
from repro.fixedpoint.qformat import QFormat, Q2_13, Q8_8
from repro.nn.layers import Conv2D, Dense, MaxPool2D
from repro.nn.network import Network
from repro.parallel.pool import resolve_workers
from repro.systolic.array import ArrayConfig
from repro.systolic.functional import FunctionalSystolicArray
from repro.systolic.noc import NocModel

__all__ = ["ShardedBackend", "SHARD_POLICIES"]

#: Supported shard policies.
SHARD_POLICIES = ("sample", "layer", "pipeline")


def _argmax(cycles: list[int]) -> int:
    """Index of the slowest array (ties toward the lowest index)."""
    if not cycles:
        return 0
    return max(range(len(cycles)), key=cycles.__getitem__)


def _slice_layer(layer, lo: int, hi: int):
    """A copy of ``layer`` holding output slice ``[lo:hi)`` of its weights.

    Conv2D slices the filter axis, Dense the output-feature axis; the
    input dimension stays full because layer sharding broadcasts the
    whole activation to every array.  Weight *values* are placeholders
    until the first :meth:`ShardedBackend.sync` copies the live slice
    in (the model-download broadcast).
    """
    if isinstance(layer, Conv2D):
        sliced = Conv2D(
            layer.in_channels, hi - lo, layer.kernel_size,
            stride=layer.stride, pad=layer.pad, name=layer.name,
        )
    elif isinstance(layer, Dense):
        sliced = Dense(layer.in_features, hi - lo, name=layer.name)
    else:  # pragma: no cover - guarded by the caller
        raise TypeError(f"cannot shard {type(layer).__name__}")
    return sliced


def _copy_slice(src, dst, lo: int, hi: int) -> None:
    """Copy output slice ``[lo:hi)`` of ``src``'s weights into ``dst``."""
    if isinstance(src, Conv2D):
        dst.weight.value[...] = src.weight.value[lo:hi]
    else:
        dst.weight.value[...] = src.weight.value[:, lo:hi]
    dst.bias.value[...] = src.bias.value[lo:hi]


# ----------------------------------------------------------------------
# Pipeline policy: stage partitioning and the chunked schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PipelinePlan:
    """Stage layout of the ``pipeline`` policy over the alive arrays.

    ``param_bounds`` cuts the network's *parametric* layers into
    contiguous stages (``param_bounds[s] : param_bounds[s + 1]``);
    ``layer_ranges`` are the matching index ranges into the full built
    layer list (non-parametric layers ride with the stage of the
    parametric layer they follow).  ``stage_arrays[s]`` lists the
    original array indices serving stage ``s`` — more than one when the
    oracle replicated a hot stage.
    """

    param_bounds: tuple[int, ...]
    layer_ranges: tuple[tuple[int, int], ...]
    stage_arrays: tuple[tuple[int, ...], ...]

    @property
    def stages(self) -> int:
        return len(self.layer_ranges)

    @property
    def widths(self) -> tuple[int, ...]:
        return tuple(len(arrays) for arrays in self.stage_arrays)


def _pipeline_schedule(
    times: list[list[int]], widths: list[int] | tuple[int, ...]
) -> tuple[int, list[list[int]], list[list[int]]]:
    """Makespan of the chunked pipeline schedule.

    ``times[s][m]`` — cycles stage ``s`` spends on micro-batch ``m``;
    ``widths[s]`` — arrays serving stage ``s``.  Chunks enter each
    stage in order; a replicated stage hands each chunk to its
    earliest-free array (ties to the lowest index), so the schedule is
    deterministic.  A chunk starts in stage ``s`` when it has left
    stage ``s - 1`` *and* its array is free.

    Returns ``(critical_cycles, busy, assign)``: the departure cycle of
    the last chunk from the last stage, each stage-array's total busy
    cycles, and ``assign[s][m]`` — which of stage ``s``'s arrays served
    chunk ``m``.  With uniform chunk times and width-1 stages the
    makespan is the textbook ``(chunks + stages - 1) * chunk_cycles``,
    i.e. fill/drain bubbles of exactly ``(stages - 1) * chunk_cycles``
    on top of the bottleneck array's busy time.
    """
    stages = len(times)
    chunks = len(times[0]) if stages else 0
    depart = [0] * chunks  # departure of chunk m from the previous stage
    busy: list[list[int]] = []
    assign: list[list[int]] = []
    for s in range(stages):
        free = [0] * widths[s]
        stage_busy = [0] * widths[s]
        stage_assign = [0] * chunks
        for m in range(chunks):
            a = min(range(widths[s]), key=free.__getitem__)
            start = max(depart[m], free[a])
            depart[m] = start + times[s][m]
            free[a] = depart[m]
            stage_busy[a] += times[s][m]
            stage_assign[m] = a
        busy.append(stage_busy)
        assign.append(stage_assign)
    critical = max(depart) if chunks else 0
    return critical, busy, assign


def _pipeline_stage_search(
    layer_cycles: list[int], shards: int, num_chunks: int
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Best contiguous stage partition of the parametric layers.

    Enumerates contiguous partitions of the per-layer cycle oracle
    (measured at one micro-batch) into ``S <= shards`` stages,
    allocates the K arrays to stages greedily (each extra array goes to
    the stage with the highest per-array load — heterogeneous widths),
    and scores each candidate with the actual chunked schedule.  A
    pipeline partitions the *model*: with ``shards >= 2`` and at least
    two parametric layers, single-stage layouts (full weight
    replication, i.e. plain data parallelism) are excluded.

    Returns ``(param_bounds, widths)``.
    """
    count = len(layer_cycles)
    if count == 0 or shards <= 0:
        raise ValueError("need at least one parametric layer and one array")
    min_stages = min(2, shards, count)
    best: tuple[int, tuple[int, ...], tuple[int, ...]] | None = None
    if count - 1 <= 12:
        masks = range(1 << (count - 1))
    else:
        # Wide networks: fall back to cycle-balanced cuts, one
        # candidate per stage count.
        masks = []
        total = sum(layer_cycles)
        for stage_count in range(min_stages, min(shards, count) + 1):
            mask, acc, cut = 0, 0, 1
            for i in range(count - 1):
                acc += layer_cycles[i]
                if acc >= total * cut / stage_count:
                    mask |= 1 << i
                    cut += 1
            masks.append(mask)
    for mask in masks:
        bounds = [0]
        bounds.extend(i + 1 for i in range(count - 1) if mask >> i & 1)
        bounds.append(count)
        stage_count = len(bounds) - 1
        if not min_stages <= stage_count <= shards:
            continue
        stage_cycles = [
            sum(layer_cycles[lo:hi])
            for lo, hi in zip(bounds, bounds[1:])
        ]
        widths = [1] * stage_count
        for _ in range(shards - stage_count):
            hottest = max(
                range(stage_count),
                key=lambda s: stage_cycles[s] / widths[s],
            )
            widths[hottest] += 1
        critical, _busy, _assign = _pipeline_schedule(
            [[stage_cycles[s]] * num_chunks for s in range(stage_count)],
            widths,
        )
        key = (critical, tuple(bounds), tuple(widths))
        if best is None or key < best:
            best = key
    if best is None:  # pragma: no cover - guarded by min_stages <= count
        raise ValueError("no feasible stage partition")
    return best[1], best[2]


def _parametric_input_elements(
    network: Network, state_shape: tuple[int, ...]
) -> list[int]:
    """Per-row element count of each parametric layer's input tensor.

    Walks the built layer stack tracking the activation shape from
    ``state_shape`` (C, H, W) — the tensor that crosses an inter-array
    link when a stage or slice boundary sits just before that layer.
    """
    c, h, w = (int(v) for v in state_shape)
    elements: list[int] = []
    for layer in network.layers:
        if isinstance(layer, Conv2D):
            elements.append(c * h * w)
            c, h, w = layer.output_shape(h, w)
        elif isinstance(layer, MaxPool2D):
            h, w = layer.output_shape(h, w)
        elif isinstance(layer, Dense):
            elements.append(layer.in_features)
        # ReLU / norm / flatten: no shape change that matters here
        # (flatten keeps c*h*w, which is what Dense.in_features reads).
    return elements


@register_backend("sharded")
class ShardedBackend(ExecutionBackend):
    """K simulated systolic arrays composed behind one backend.

    Parameters
    ----------
    network:
        The trained float network (single source of weights).
    shards:
        Number of arrays K (>= 1).
    shard:
        ``"sample"`` (split the batch) or ``"layer"`` (split conv
        filters / FC output neurons).
    config / fidelity / quantized / weight_format / activation_format:
        Passed through to every child :class:`SystolicBackend` — each
        array runs the same datapath the single-array backend models.
    noc:
        Inter-array interconnect topology — one of
        :data:`~repro.systolic.noc.NOC_TOPOLOGIES`.  ``"flat"``
        (default) is the legacy 1-cycle-per-element single-hop model,
        so every pinned sharding number reproduces unchanged;
        ``"ring"`` / ``"mesh"`` charge real hop counts over 128-bit
        links at the quantised word width.
    pipeline_chunk:
        Micro-batch rows per pipeline stage hand-off (pipeline policy
        only).  ``None`` picks ``max(1, batch // (8 * K))`` — about 8
        chunks per array, enough overlap to amortise fill/drain
        without drowning in per-chunk filter reloads.
    workers:
        Host process-pool size for sample-policy child forwards
        (``"auto"`` = one per CPU, capped at K).  ``1`` (default) is
        the serial path, byte-for-byte today's behaviour.  Parallel
        dispatch sends the *same* chunks to the same pure child code
        in pool workers and replays the accounting in shard order, so
        results and cost records are bitwise identical at any worker
        count.  The layer policy always runs serially — its layers
        chain through a gather/broadcast data dependency, so there is
        no host-side parallelism to harvest.
    """

    def __init__(
        self,
        network: Network,
        shards: int = 2,
        shard: str = "sample",
        config: ArrayConfig | None = None,
        fidelity: str = "fast",
        quantized: bool = True,
        weight_format: QFormat = Q2_13,
        activation_format: QFormat = Q8_8,
        workers: int | str = 1,
        noc: str = "flat",
        pipeline_chunk: int | None = None,
    ):
        if shards <= 0:
            raise ValueError("shards must be positive")
        if shard not in SHARD_POLICIES:
            raise ValueError(
                f"unknown shard policy {shard!r}; expected one of {SHARD_POLICIES}"
            )
        if pipeline_chunk is not None and pipeline_chunk <= 0:
            raise ValueError("pipeline_chunk must be positive")
        self.network = network
        self.shards = shards
        self.shard = shard
        self.fidelity = fidelity
        self.quantized = quantized
        self.activation_format = activation_format
        self.noc = noc
        self.pipeline_chunk = pipeline_chunk
        # Validates the topology name; node ids are *original* array
        # indices, so transfers stay well-defined after failover.
        self._noc = NocModel(
            topology=noc, nodes=shards,
            word_bits=activation_format.total_bits,
        )
        child_kwargs = dict(
            config=config, fidelity=fidelity, quantized=quantized,
            weight_format=weight_format, activation_format=activation_format,
        )
        self._child_kwargs = child_kwargs
        #: Child position -> original array index (identity until a
        #: crash failover rebuilds the layer plan over the survivors).
        self._position_to_shard = list(range(shards))
        #: Lazily built float fallback for all-arrays-lost degradation.
        self._fallback = None
        self._chaos_forward = 0
        self.workers = resolve_workers(workers, tasks=shards)
        #: Bumped whenever the serving weights change (sync, chaos bit
        #: flips, buffer restore); the pool executor ships weight deltas
        #: to workers only when its shipped version falls behind.
        self._weights_version = 0
        self._executor = None
        #: Pipeline stage layouts, keyed on (alive arrays, state shape,
        #: chunk rows, chunk count); cleared on crash failover.
        self._pipeline_plans: dict[tuple, PipelinePlan] = {}
        if shard != "layer":
            # Sample and pipeline policies: every array downloads the
            # full model.  All K copies are byte-identical, so one
            # simulated child stands in for every array (the simulation
            # quantises once per sync, not K times) — the K entries are
            # the same object, indexed per-array for the forward loop.
            self.children = [SystolicBackend(network, **child_kwargs)] * shards
            self._plan = None
        else:
            self._plan = self._build_layer_plan(network, shards)
            self.children = [
                SystolicBackend(net, **child_kwargs)
                for net in self._shard_networks
            ]
            self.sync()
        self.config = self.children[0].config

    # ------------------------------------------------------------------
    def _build_layer_plan(self, network: Network, shards: int):
        """Per-layer shard assignments for the ``layer`` policy.

        Returns ``{layer_index: [(array, sliced_layer, lo, hi), ...]}``
        covering every parametric layer, and stores one sliced
        sub-network per array (arrays left idle by a layer narrower
        than K simply get no slice of it).
        """
        plan: dict[int, list[tuple[int, object, int, int]]] = {}
        per_array_layers: list[list] = [[] for _ in range(shards)]
        for index, layer in network.parametric_layers():
            width = (
                layer.out_channels
                if isinstance(layer, Conv2D)
                else layer.out_features
            )
            bounds = np.linspace(0, width, shards + 1).astype(int)
            assignments = []
            for k in range(shards):
                lo, hi = int(bounds[k]), int(bounds[k + 1])
                if hi <= lo:
                    continue  # layer narrower than K: array k sits idle
                sliced = _slice_layer(layer, lo, hi)
                assignments.append((k, sliced, lo, hi))
                per_array_layers[k].append(sliced)
            plan[index] = assignments
        self._shard_networks = [
            Network(layers or [Dense(1, 1, name=f"idle{k}")],
                    name=f"{network.name}.shard{k}")
            for k, layers in enumerate(per_array_layers)
        ]
        return plan

    def sync(self) -> None:
        """Broadcast the live float weights to every array's datapath.

        Sample and pipeline sharding re-quantise the full weight set
        once — the per-array copies are byte-identical, so the children
        share the quantised operands.  Layer sharding copies each
        array's slice out of the live network first (the sliced
        sub-networks own their parameters), then re-quantises it.
        """
        self._weights_version += 1
        if self.shard != "layer":
            self.children[0].sync()
            return
        for index, assignments in self._plan.items():
            layer = self.network.layers[index]
            for _k, sliced, lo, hi in assignments:
                _copy_slice(layer, sliced, lo, hi)
        for child in self.children:
            child.sync()

    # ------------------------------------------------------------------
    # Serving-buffer seam (fault injection / detection)
    # ------------------------------------------------------------------
    @property
    def weight_format(self):
        return self.children[0].weight_format

    def weight_buffers(self) -> dict[str, np.ndarray]:
        """The children's serving buffers (prefixed per array for layer
        sharding; sample/pipeline arrays share one physical copy)."""
        if self.shard != "layer":
            return self.children[0].weight_buffers()
        merged: dict[str, np.ndarray] = {}
        for k, child in enumerate(self.children):
            for name, arr in child.weight_buffers().items():
                merged[f"shard{k}/{name}"] = arr
        return merged

    def corrupt_weight_bit(self, name: str, index: int, bit: int) -> None:
        self._weights_version += 1
        if self.shard != "layer":
            self.children[0].corrupt_weight_bit(name, index, bit)
            return
        prefix, _, rest = name.partition("/")
        self.children[int(prefix[len("shard"):])].corrupt_weight_bit(
            rest, index, bit
        )

    def _refresh_weight_values(self) -> None:
        self._weights_version += 1
        if self.shard != "layer":
            self.children[0]._refresh_weight_values()
            return
        for child in self.children:
            child._refresh_weight_values()

    # ------------------------------------------------------------------
    # Fault handling (FAULTS seam active only)
    # ------------------------------------------------------------------
    def _active_shards(self) -> list[int]:
        """Alive array indices, processing any newly due crash faults."""
        if not FAULTS.enabled:
            return list(range(self.shards))
        inj = FAULTS.injector
        for k in inj.due_crashes():
            if k < self.shards:
                self._kill_shard(k, inj)
        return [k for k in range(self.shards) if k not in inj.dead_shards]

    def _kill_shard(self, k: int, inj) -> None:
        """Process one scheduled crash: detect, then fail over.

        Detection is the per-shard health check — the scheduler notices
        the array stopped answering after ``health_check_timeout_cycles``
        (charged as recovery overhead).  Recovery remaps the dead
        array's work onto the survivors: sample sharding just re-splits
        the batch; layer sharding rebuilds the slice plan over the
        surviving arrays and re-broadcasts the weights.  With no
        survivors the backend degrades to the float numpy fallback.
        """
        inj.kill(k)
        rec = inj.record("shard.crash", target=f"shard{k}", detail="scheduled")
        inj.add_recovery_cycles(inj.plan.health_check_timeout_cycles)
        inj.mark_detected(rec)
        alive = [i for i in range(self.shards) if i not in inj.dead_shards]
        with PROBE.span("recovery", kind="shard.failover", shard=k):
            if not alive:
                degraded = inj.record(
                    "fleet.degraded",
                    target=self.name,
                    detail="all arrays lost",
                )
                inj.mark_detected(degraded)
                inj.mark_recovered(degraded, detail="serving from numpy fallback")
            elif self.shard == "layer":
                self._rebuild_layer_shards(alive)
            elif self.shard == "pipeline":
                # Stage plans are keyed on the surviving arrays — drop
                # them so the next forward re-partitions the stages.
                self._pipeline_plans.clear()
        inj.mark_recovered(
            rec,
            detail=(
                "degraded to numpy fallback"
                if not alive
                else f"failover onto {len(alive)} surviving arrays"
            ),
        )

    def _rebuild_layer_shards(self, alive: list[int]) -> None:
        """Re-slice every layer across the surviving arrays."""
        self._plan = self._build_layer_plan(self.network, len(alive))
        self.children = [
            SystolicBackend(net, **self._child_kwargs)
            for net in self._shard_networks
        ]
        self._position_to_shard = list(alive)
        self.sync()

    def _forward_degraded(self, x: np.ndarray) -> tuple[np.ndarray, ShardCost]:
        """All arrays lost: float inference on the host, zero array cost."""
        if self._fallback is None:
            from repro.backend.numpy_backend import NumpyBackend

            self._fallback = NumpyBackend(self.network)
        with PROBE.span("shard.forward", shard=-1, states=x.shape[0]) as sp:
            q_values, _ = self._fallback.forward_batch(x)
            sp.add_cycles(0)
        FAULTS.injector.note_degraded(x.shape[0])
        return q_values, ShardCost(
            backend=self.name, states=x.shape[0], macs=0, layer_cycles={},
            shards=self.shards, shard_cycles=(0,) * self.shards,
            critical_path_cycles=0, merge_cycles=0, critical_shard_index=0,
            noc=self.noc,
        )

    def _chaos_extra(self, shard: int, base_cycles: int) -> int:
        """Extra cycles this forward charges shard ``shard`` for faults.

        Transient faults retry with exponential backoff (each failed
        attempt re-burns the shard's forward plus a timeout); stragglers
        multiply the (possibly retried) total.  Both are detected and
        recovered within the same forward — they stretch the critical
        path rather than corrupting output.
        """
        inj = FAULTS.injector
        plan = inj.plan
        extra = 0
        attempts = inj.transient_attempts(self._chaos_forward, shard)
        if attempts:
            retry = 0
            for attempt in range(attempts):
                retry += base_cycles + int(
                    plan.retry_timeout_cycles * plan.retry_backoff ** attempt
                )
            rec = inj.record(
                "shard.transient",
                target=f"shard{shard}",
                detail=f"failed attempts={attempts}",
            )
            inj.mark_detected(rec)
            inj.mark_recovered(rec, detail=f"retry succeeded after {attempts}")
            inj.add_recovery_cycles(retry)
            extra += retry
        factor = inj.straggler_factor(self._chaos_forward, shard)
        if factor > 1.0:
            slow = int((base_cycles + extra) * (factor - 1.0))
            rec = inj.record(
                "shard.straggler",
                target=f"shard{shard}",
                detail=f"factor={factor:g}",
            )
            inj.mark_detected(rec)
            inj.mark_recovered(rec, detail="absorbed by the schedule")
            extra += slow
        return extra

    # ------------------------------------------------------------------
    def train_cost(
        self,
        batch_size: int,
        state_shape: tuple[int, ...],
        first_trainable: int = 0,
    ) -> ShardCost:
        """One training step across the K arrays, per shard policy.

        * ``sample`` — data parallel: the batch splits into K chunks,
          every array runs forward + backward GEMMs against a full
          weight copy, and the per-array weight gradients all-reduce to
          the root array over the NoC.
        * ``layer`` — model parallel: each array trains only its weight
          slice, so dW stays local (no full-gradient all-reduce — the
          old silent fall-back to the data-parallel split is gone);
          the backward pays a partial-dX reduction per layer instead.
        * ``pipeline`` — pipelined: micro-batches stream forward and
          backward through the stages; fill/drain bubbles are charged
          explicitly and boundary activations (and their gradients)
          cross the NoC.
        """
        alive = (
            [k for k in range(self.shards) if k not in FAULTS.injector.dead_shards]
            if FAULTS.enabled
            else list(range(self.shards))
        )
        if not alive:
            # Every array lost: training stays in host float, charging
            # the (gone) arrays nothing.
            return ShardCost(
                backend=self.name, states=batch_size,
                shards=self.shards, shard_cycles=(0,) * self.shards,
                noc=self.noc,
            )
        if self.shard == "layer":
            return self._train_cost_layer(batch_size, state_shape, first_trainable)
        if self.shard == "pipeline":
            return self._train_cost_pipeline(
                batch_size, state_shape, first_trainable, alive
            )
        return self._train_cost_sample(
            batch_size, state_shape, first_trainable, alive
        )

    def _ship(self, elements: int, src: int, dst: int) -> tuple[int, int]:
        """NoC (cycles, element-hops) of one inter-array transfer."""
        return (
            self._noc.transfer_cycles(elements, src, dst),
            self._noc.element_hops(elements, src, dst),
        )

    def _train_cost_sample(
        self,
        batch_size: int,
        state_shape: tuple[int, ...],
        first_trainable: int,
        alive: list[int],
    ) -> ShardCost:
        """Data-parallel training: chunked batch, gradient all-reduce."""
        from repro.systolic.training import network_training_step_cost

        sizes = [
            len(chunk)
            for chunk in np.array_split(np.arange(batch_size), len(alive))
        ]
        shard_cycles = [0] * self.shards
        layer_cycles: dict[str, int] = {}
        macs = 0
        contributors = []
        for k, size in zip(alive, sizes):
            if size == 0:
                continue  # batch narrower than K: array k sits idle
            contributors.append(k)
            step = network_training_step_cost(
                self.network, state_shape, size,
                config=self.config, first_trainable=first_trainable,
            )
            shard_cycles[k] = step.total_cycles
            macs += step.total_macs
            for layer in step.layers:
                name = layer.name
                layer_cycles[name] = layer_cycles.get(name, 0) + layer.total_cycles
        grad_elements = sum(p.size for p in self.network.parameters(first_trainable))
        merge = 0
        merge_hops = 0
        root = contributors[0] if contributors else alive[0]
        for k in contributors[1:]:
            # Each non-root array ships its full weight gradient to the
            # root (flat NoC: one cycle per element — the legacy charge).
            cycles, hops = self._ship(grad_elements, k, root)
            merge += cycles
            merge_hops += hops
        critical = max(shard_cycles) + merge
        return ShardCost(
            backend=self.name, states=batch_size, macs=macs,
            layer_cycles=layer_cycles, shards=self.shards,
            shard_cycles=tuple(shard_cycles),
            critical_path_cycles=critical, merge_cycles=merge,
            critical_shard_index=_argmax(shard_cycles),
            merge_hops=merge_hops, noc=self.noc,
        )

    def _train_cost_layer(
        self,
        batch_size: int,
        state_shape: tuple[int, ...],
        first_trainable: int,
    ) -> ShardCost:
        """Model-parallel training for the ``layer`` policy.

        Each array runs the forward + backward GEMMs of *its output
        slice only* — dW is an outer product over the slice's rows, so
        weight gradients never leave the array that applies them.  What
        crosses the NoC instead:

        * the forward broadcast/gather of each layer's activations
          (the same charges sharded inference pays),
        * per trainable layer, a partial-dX reduction: every non-hub
          array ships its partial input-gradient (full input shape) to
          the layer's hub, which sums them and forwards the result to
          the arrays of the previous parametric layer — skipped when no
          trainable layer sits below, exactly where backprop stops.

        Cycles come from the same closed-form per-layer oracle the
        data-parallel path uses, evaluated on each slice's width, so
        the layer-sliced bill is consistent with the whole-layer one.
        """
        from repro.systolic.training import _conv_layer_cost, _fc_layer_cost

        c, h, w = (int(v) for v in state_shape)
        shard_cycles = [0] * self.shards
        layer_cycles: dict[str, int] = {}
        macs = 0
        merge = 0
        merge_hops = 0
        critical = 0
        hub_orig: int | None = None  # array holding the merged activation
        prev_param: tuple[int, list[int]] | None = None

        def ship(elements: int, src: int, dst: int) -> None:
            nonlocal merge, merge_hops
            cycles, hops = self._ship(elements, src, dst)
            merge += cycles
            merge_hops += hops

        for index, layer in enumerate(self.network.layers):
            assignments = self._plan.get(index)
            if not assignments:
                if isinstance(layer, MaxPool2D):
                    h, w = layer.output_shape(h, w)
                continue
            trainable = index >= first_trainable
            consumers = [self._position_to_shard[k] for k, *_rest in assignments]
            is_conv = isinstance(layer, Conv2D)
            act_in = batch_size * (c * h * w if is_conv else layer.in_features)
            if hub_orig is not None:
                # Forward: broadcast the merged activation to the other
                # arrays computing this layer (inference's charge).
                for dst in consumers:
                    if dst != hub_orig:
                        ship(act_in, hub_orig, dst)
            if is_conv:
                oh = (h + 2 * layer.pad - layer.kernel_size) // layer.stride + 1
                ow = (w + 2 * layer.pad - layer.kernel_size) // layer.stride + 1
                per_unit = oh * ow
            else:
                per_unit = 1
            slice_cycles = []
            for k, _sliced, lo, hi in assignments:
                orig = self._position_to_shard[k]
                if is_conv:
                    cost, _shape = _conv_layer_cost(
                        layer.name, c, h, w, hi - lo, layer.kernel_size,
                        layer.stride, layer.pad, batch_size, self.config,
                        trainable,
                    )
                else:
                    cost = _fc_layer_cost(
                        layer.name, layer.in_features, hi - lo, batch_size,
                        self.config, trainable,
                    )
                shard_cycles[orig] += cost.total_cycles
                slice_cycles.append(cost.total_cycles)
                macs += cost.total_macs
                name = layer.name
                layer_cycles[name] = layer_cycles.get(name, 0) + cost.total_cycles
            critical += max(slice_cycles)
            new_hub = self._position_to_shard[assignments[0][0]]
            # Forward: gather the output slices to the layer's hub.
            for k, _sliced, lo, hi in assignments:
                orig = self._position_to_shard[k]
                if orig != new_hub:
                    ship(batch_size * (hi - lo) * per_unit, orig, new_hub)
            # Backward: partial-dX reduction, only while gradient still
            # flows to a trainable layer below this one.
            if (
                trainable
                and prev_param is not None
                and prev_param[0] >= first_trainable
            ):
                for orig in consumers:
                    if orig != new_hub:
                        ship(act_in, orig, new_hub)
                for dst in prev_param[1]:
                    if dst != new_hub:
                        ship(act_in, new_hub, dst)
            if is_conv:
                c, h, w = layer.out_channels, oh, ow
            hub_orig = new_hub
            prev_param = (index, consumers)
        critical += merge
        return ShardCost(
            backend=self.name, states=batch_size, macs=macs,
            layer_cycles=layer_cycles, shards=self.shards,
            shard_cycles=tuple(shard_cycles),
            critical_path_cycles=critical, merge_cycles=merge,
            critical_shard_index=_argmax(shard_cycles),
            merge_hops=merge_hops, noc=self.noc,
        )

    def _train_cost_pipeline(
        self,
        batch_size: int,
        state_shape: tuple[int, ...],
        first_trainable: int,
        alive: list[int],
    ) -> ShardCost:
        """Pipelined training: micro-batches stream through the stages.

        Each stage's per-chunk time is its layers' forward + backward
        GEMM cycles from the closed-form oracle; the same chunked
        schedule as inference yields the makespan, per-array busy
        cycles and fill/drain bubbles.  Stage-boundary activations
        cross the NoC once forward and — while a trainable layer sits
        below the boundary — once more backward as the dX gradient;
        replicated (width > 1) stages additionally all-reduce their
        local weight gradients within the stage.
        """
        from repro.systolic.training import network_training_step_cost

        state_shape = tuple(int(v) for v in state_shape)
        chunk_rows = self._resolve_pipeline_chunk(batch_size, len(alive))
        num_chunks = max(1, -(-batch_size // chunk_rows))
        plan = self._pipeline_plan(
            tuple(alive), state_shape, chunk_rows, num_chunks
        )
        sizes = [
            len(chunk)
            for chunk in np.array_split(np.arange(batch_size), num_chunks)
            if len(chunk) > 0  # zero-row chunks never enter the schedule
        ]
        num_chunks = len(sizes)
        steps = {
            size: network_training_step_cost(
                self.network, state_shape, size,
                config=self.config, first_trainable=first_trainable,
            )
            for size in set(sizes)
        }
        stages = plan.stages
        times = [[0] * num_chunks for _ in range(stages)]
        layer_cycles: dict[str, int] = {}
        macs = 0
        for m, size in enumerate(sizes):
            step = steps[size]
            macs += step.total_macs
            for s in range(stages):
                lo, hi = plan.param_bounds[s], plan.param_bounds[s + 1]
                times[s][m] = sum(
                    cost.total_cycles for cost in step.layers[lo:hi]
                )
            for cost in step.layers:
                layer_cycles[cost.name] = (
                    layer_cycles.get(cost.name, 0) + cost.total_cycles
                )
        critical_compute, busy, assign = _pipeline_schedule(
            times, plan.widths
        )
        shard_cycles = [0] * self.shards
        for s, arrays in enumerate(plan.stage_arrays):
            for a, orig in enumerate(arrays):
                shard_cycles[orig] = busy[s][a]
        merge = 0
        merge_hops = 0
        boundary_rows = _parametric_input_elements(self.network, state_shape)
        param_indices = [i for i, _l in self.network.parametric_layers()]
        ref_layers = steps[sizes[0]].layers
        for s in range(1, stages):
            first_param = plan.param_bounds[s]
            rows = boundary_rows[first_param]
            # Gradient crosses back over this boundary iff a trainable
            # parametric layer sits below it (backprop reaches it).
            grad_crosses = param_indices[first_param - 1] >= first_trainable
            for m in range(num_chunks):
                src = plan.stage_arrays[s - 1][assign[s - 1][m]]
                dst = plan.stage_arrays[s][assign[s][m]]
                elements = sizes[m] * rows * (2 if grad_crosses else 1)
                cycles, hops = self._ship(elements, src, dst)
                merge += cycles
                merge_hops += hops
        for s, arrays in enumerate(plan.stage_arrays):
            if len(arrays) <= 1:
                continue
            # Replicated stage: each replica trained on its own chunks,
            # so the stage's weight gradients all-reduce to its first
            # array before the update applies.
            lo, hi = plan.param_bounds[s], plan.param_bounds[s + 1]
            stage_grad = sum(cost.weight_elements for cost in ref_layers[lo:hi])
            for orig in arrays[1:]:
                cycles, hops = self._ship(stage_grad, orig, arrays[0])
                merge += cycles
                merge_hops += hops
        fill_drain = critical_compute - max(shard_cycles)
        critical = critical_compute + merge
        return ShardCost(
            backend=self.name, states=batch_size, macs=macs,
            layer_cycles=layer_cycles, shards=self.shards,
            shard_cycles=tuple(shard_cycles),
            critical_path_cycles=critical, merge_cycles=merge,
            critical_shard_index=_argmax(shard_cycles),
            merge_hops=merge_hops, fill_drain_cycles=fill_drain,
            noc=self.noc,
        )

    def _requantize(self, x: np.ndarray) -> np.ndarray:
        return self.activation_format.quantize(x) if self.quantized else x

    def _shard_executor(self):
        """The pool executor for sample-policy forwards, built on first
        parallel dispatch (workers spawn only when actually used)."""
        if self._executor is None:
            from repro.parallel.dispatch import ShardExecutor

            self._executor = ShardExecutor(self, self.workers)
        return self._executor

    def forward_batch(self, states: np.ndarray) -> tuple[np.ndarray, ShardCost]:
        x = np.asarray(states, dtype=np.float64)
        if x.ndim != 4:
            raise ValueError(f"expected an (N, C, H, W) state batch, got {x.shape}")
        if FAULTS.enabled:
            self._chaos_forward = FAULTS.injector.note_forward()
        if self.shard == "sample":
            return self._forward_sample(x)
        if self.shard == "pipeline":
            return self._forward_pipeline(x)
        return self._forward_layer_sharded(x)

    def _forward_sample(self, x: np.ndarray) -> tuple[np.ndarray, ShardCost]:
        """Each array runs the whole network over its batch chunk.

        The batch splits over the *surviving* arrays — after a crash
        failover the same work re-splits onto fewer chunks, so each
        survivor's chunk (and cycle bill) grows by ~K/(K-1).  With every
        array alive the split is exactly the original one.
        """
        n = x.shape[0]
        active = self._active_shards()
        if not active:
            return self._forward_degraded(x)
        chunks = np.array_split(x, len(active))
        jobs = [
            (k, chunk)
            for k, chunk in zip(active, chunks)
            if chunk.shape[0] > 0  # batch narrower than K: array k idles
        ]
        if self.workers > 1 and len(jobs) > 1:
            # Parallel path: pure child forwards run in pool workers
            # (PROBE/FAULTS permanently off there); the workers time
            # themselves and the spans/chaos accounting replay below in
            # shard order, so both the numerics and every ledger match
            # the serial loop bitwise.
            results = self._shard_executor().forward_chunks(
                [chunk for _k, chunk in jobs]
            )
            forwards = [
                (k, chunk, q_k, cost_k, wall_ns, worker)
                for (k, chunk), (q_k, cost_k, wall_ns, worker)
                in zip(jobs, results)
            ]
        else:
            forwards = []
            for k, chunk in jobs:
                start = time.perf_counter_ns()
                q_k, cost_k = self.children[k].forward_batch(chunk)
                forwards.append(
                    (k, chunk, q_k, cost_k,
                     time.perf_counter_ns() - start, None)
                )
        outputs = []
        shard_cycles = [0] * self.shards
        layer_cycles: dict[str, int] = {}
        macs = 0
        merge = 0
        merge_hops = 0
        root = active[0]
        for k, chunk, q_k, cost_k, wall_ns, worker in forwards:
            PROBE.record_span(
                "shard.forward", wall_ns, cycles=cost_k.total_cycles,
                worker=worker, shard=k, states=chunk.shape[0],
            )
            outputs.append(q_k)
            cycles_k = cost_k.total_cycles
            if FAULTS.enabled:
                cycles_k += self._chaos_extra(k, cycles_k)
            shard_cycles[k] = cycles_k
            macs += cost_k.macs
            for name, cycles in cost_k.layer_cycles.items():
                layer_cycles[name] = layer_cycles.get(name, 0) + cycles
            if k != root:
                # Gathering array k's Q rows to the root array over the
                # NoC (flat: one element per link cycle, the legacy
                # charge; the root's rows stay put).
                cycles, hops = self._ship(q_k.size, k, root)
                merge += cycles
                merge_hops += hops
        q_values = np.concatenate(outputs, axis=0)
        critical = max(shard_cycles) + merge
        return q_values, ShardCost(
            backend=self.name, states=n, macs=macs, layer_cycles=layer_cycles,
            shards=self.shards, shard_cycles=tuple(shard_cycles),
            critical_path_cycles=critical, merge_cycles=merge,
            critical_shard_index=_argmax(shard_cycles),
            merge_hops=merge_hops, noc=self.noc,
        )

    def _forward_layer_sharded(self, x: np.ndarray) -> tuple[np.ndarray, ShardCost]:
        """Every array computes its output slice of each layer.

        Layers execute in sequence (true data dependency); within a
        layer the K slices run in parallel, so the layer contributes
        its *slowest* slice to the critical path.  After each
        parametric layer the slices gather to a hub array — the first
        array assigned to the layer — into the full activation
        (concatenation along the channel/feature axis reproduces the
        original output order — slices are contiguous); elementwise /
        pooling layers run there.  When the next parametric layer is
        reached, the activation it consumes — post-pooling, so the
        tensor that actually moves — is broadcast from the hub to the
        *other* arrays assigned to it (nothing after the last layer:
        the Q values are already gathered; nothing for the first, whose
        input arrives from the host).  Both transfers price each moved
        element on the NoC model — per *receiving* array for the
        broadcast (each non-hub consumer's link carries the whole
        activation; the hub itself never pays), per *sending* array for
        the gather — so the flat topology reproduces the legacy
        one-cycle-per-element charge exactly.
        """
        n = x.shape[0]
        if FAULTS.enabled and not self._active_shards():
            return self._forward_degraded(x)
        x = self._requantize(x)
        shard_cycles = [0] * self.shards
        layer_cycles: dict[str, int] = {}
        macs = 0
        merge = 0
        merge_hops = 0
        critical = 0
        hub: int | None = None
        pe_sim = (
            FunctionalSystolicArray(self.config, fidelity="pe")
            if self.fidelity == "pe"
            else None
        )

        def charge(name: str, cycles: int) -> None:
            while name in layer_cycles:
                name += "'"
            layer_cycles[name] = cycles

        for index, layer in enumerate(self.network.layers):
            assignments = self._plan.get(index)
            if not assignments:
                # ReLU / pooling / flatten run on the merged activation
                # (vector units / comparators) — no MAC cycles, exactly
                # as on the single-array path.
                x = layer.forward(x, training=False)
            else:
                if hub is not None:
                    # Broadcast the hub's activation to every *other*
                    # array computing this layer — one full-activation
                    # transfer per non-hub consumer, none when the hub
                    # consumes its own copy (so a layer feeding several
                    # arrays charges each link once, no double count).
                    hub_orig = self._position_to_shard[hub]
                    for k in sorted({k for k, *_rest in assignments} - {hub}):
                        cycles, hops = self._ship(
                            x.size, hub_orig, self._position_to_shard[k]
                        )
                        merge += cycles
                        merge_hops += hops
                parts = []
                slice_cycles = []
                work = 0
                for k, sliced, _lo, _hi in assignments:
                    orig = self._position_to_shard[k]
                    with PROBE.span(
                        "shard.forward", shard=orig, layer=layer.name
                    ) as sp:
                        out_k, cycles_k, macs_k = self.children[k].forward_layer(
                            sliced, x, pe_sim
                        )
                        sp.add_cycles(cycles_k)
                    parts.append(out_k)
                    shard_cycles[orig] += cycles_k
                    slice_cycles.append(cycles_k)
                    work += cycles_k
                    macs += macs_k
                x = np.concatenate(parts, axis=1)
                charge(layer.name, work)
                # Gather every non-hub slice into the full activation.
                hub = assignments[0][0]
                hub_orig = self._position_to_shard[hub]
                for (k, *_rest), part in zip(assignments[1:], parts[1:]):
                    cycles, hops = self._ship(
                        part.size, self._position_to_shard[k], hub_orig
                    )
                    merge += cycles
                    merge_hops += hops
                critical += max(slice_cycles)
            x = self._requantize(x)
        critical += merge
        if FAULTS.enabled:
            # Transient retries and stragglers stretch each array's
            # per-layer slices; charged conservatively to the critical
            # path (every layer barrier waits on its slowest slice).
            for orig in self._position_to_shard:
                if shard_cycles[orig] == 0:
                    continue
                extra = self._chaos_extra(orig, shard_cycles[orig])
                shard_cycles[orig] += extra
                critical += extra
        return x, ShardCost(
            backend=self.name, states=n, macs=macs, layer_cycles=layer_cycles,
            shards=self.shards, shard_cycles=tuple(shard_cycles),
            critical_path_cycles=critical, merge_cycles=merge,
            critical_shard_index=_argmax(shard_cycles),
            merge_hops=merge_hops, noc=self.noc,
        )

    # ------------------------------------------------------------------
    # Pipeline policy
    # ------------------------------------------------------------------
    def _resolve_pipeline_chunk(self, n: int, arrays: int) -> int:
        """Micro-batch rows per pipeline chunk for an ``n``-row batch."""
        if self.pipeline_chunk is not None:
            return self.pipeline_chunk
        return max(1, n // (8 * arrays))

    def _pipeline_plan(
        self,
        alive: tuple[int, ...],
        state_shape: tuple[int, ...],
        chunk_rows: int,
        num_chunks: int,
    ) -> PipelinePlan:
        """The (cached) stage layout over the surviving arrays.

        Stage bounds and widths come from the closed-form per-layer
        cycle oracle at the micro-batch size — it matches the measured
        ``forward_layer`` cycles exactly, so no probe forwards run —
        scored against the actual chunked schedule.
        """
        key = (alive, tuple(int(v) for v in state_shape), chunk_rows, num_chunks)
        plan = self._pipeline_plans.get(key)
        if plan is not None:
            return plan
        from repro.systolic.training import network_training_step_cost

        step = network_training_step_cost(
            self.network, state_shape, chunk_rows,
            config=self.config,
            first_trainable=len(self.network.layers),  # forward only
        )
        bounds, widths = _pipeline_stage_search(
            [cost.forward_cycles for cost in step.layers],
            len(alive), num_chunks,
        )
        param_indices = [i for i, _layer in self.network.parametric_layers()]
        # Each stage starts at its first parametric layer (stage 0 also
        # owns any leading non-parametric layers) and runs to the next
        # stage's start; trailing layers ride with the last stage.
        starts = [0] + [param_indices[b] for b in bounds[1:-1]]
        ends = starts[1:] + [len(self.network.layers)]
        stage_arrays = []
        pos = 0
        for width in widths:
            stage_arrays.append(tuple(alive[pos:pos + width]))
            pos += width
        plan = PipelinePlan(
            param_bounds=tuple(bounds),
            layer_ranges=tuple(zip(starts, ends)),
            stage_arrays=tuple(stage_arrays),
        )
        self._pipeline_plans[key] = plan
        return plan

    def _forward_pipeline(self, x: np.ndarray) -> tuple[np.ndarray, ShardCost]:
        """The batch streams through layer stages in micro-batches.

        Stages own contiguous layer ranges (plan from the cycle
        oracle); each micro-batch runs the stages in order on the
        stage's earliest-free array, so consecutive chunks overlap
        across stages.  Compute is bitwise the single-array datapath —
        chunking the batch and the elementwise re-quantisation after
        every layer both commute with concatenation — while the *cost*
        records the pipeline schedule: per-array busy cycles, the
        fill/drain bubbles the schedule cannot hide
        (``fill_drain_cycles``) and NoC transfer cycles for every
        stage-boundary hand-off plus the final Q gather.
        """
        n = x.shape[0]
        active = self._active_shards()
        if not active:
            return self._forward_degraded(x)
        chunk_rows = self._resolve_pipeline_chunk(n, len(active))
        num_chunks = max(1, -(-n // chunk_rows))
        plan = self._pipeline_plan(
            tuple(active), x.shape[1:], chunk_rows, num_chunks
        )
        chunks = [
            chunk for chunk in np.array_split(x, num_chunks)
            if chunk.shape[0] > 0  # zero-row chunks never dispatch
        ]
        num_chunks = len(chunks)
        stages = plan.stages
        times = [[0] * num_chunks for _ in range(stages)]
        walls = [[0] * num_chunks for _ in range(stages)]
        boundary_sizes = [[0] * num_chunks for _ in range(stages)]
        layer_cycles: dict[str, int] = {}
        macs = 0
        outputs = []
        pe_sim = (
            FunctionalSystolicArray(self.config, fidelity="pe")
            if self.fidelity == "pe"
            else None
        )
        child = self.children[0]
        for m, chunk in enumerate(chunks):
            h = self._requantize(chunk)
            for s, (lo, hi) in enumerate(plan.layer_ranges):
                if s > 0:
                    boundary_sizes[s][m] = h.size
                start = time.perf_counter_ns()
                stage_cycles = 0
                for index in range(lo, hi):
                    layer = self.network.layers[index]
                    if isinstance(layer, (Conv2D, Dense)):
                        h, cycles, macs_m = child.forward_layer(layer, h, pe_sim)
                        stage_cycles += cycles
                        macs += macs_m
                        layer_cycles[layer.name] = (
                            layer_cycles.get(layer.name, 0) + cycles
                        )
                    else:
                        h = layer.forward(h, training=False)
                    h = self._requantize(h)
                times[s][m] = stage_cycles
                walls[s][m] = time.perf_counter_ns() - start
            outputs.append(h)
        q_values = np.concatenate(outputs, axis=0)
        critical_compute, busy, assign = _pipeline_schedule(times, plan.widths)
        shard_cycles = [0] * self.shards
        for s, arrays in enumerate(plan.stage_arrays):
            for a, orig in enumerate(arrays):
                shard_cycles[orig] = busy[s][a]
        for s in range(stages):
            for m in range(num_chunks):
                PROBE.record_span(
                    "shard.forward", walls[s][m], cycles=times[s][m],
                    shard=plan.stage_arrays[s][assign[s][m]],
                    stage=s, states=chunks[m].shape[0],
                )
        # Stage hand-offs: chunk m leaves stage s-1's serving array for
        # stage s's, paying the NoC for the boundary activation; the
        # last stage's non-hub arrays then gather their Q rows.
        merge = 0
        merge_hops = 0
        for s in range(1, stages):
            for m in range(num_chunks):
                cycles, hops = self._ship(
                    boundary_sizes[s][m],
                    plan.stage_arrays[s - 1][assign[s - 1][m]],
                    plan.stage_arrays[s][assign[s][m]],
                )
                merge += cycles
                merge_hops += hops
        q_hub = plan.stage_arrays[-1][0]
        for m, out in enumerate(outputs):
            src = plan.stage_arrays[-1][assign[-1][m]]
            if src != q_hub:
                cycles, hops = self._ship(out.size, src, q_hub)
                merge += cycles
                merge_hops += hops
        if FAULTS.enabled:
            # Transient retries and stragglers stretch an array's busy
            # time; charged conservatively to the makespan (every chunk
            # behind the slow array waits).
            for orig in active:
                if shard_cycles[orig] == 0:
                    continue
                extra = self._chaos_extra(orig, shard_cycles[orig])
                shard_cycles[orig] += extra
                critical_compute += extra
        fill_drain = critical_compute - max(shard_cycles)
        critical = critical_compute + merge
        return q_values, ShardCost(
            backend=self.name, states=n, macs=macs, layer_cycles=layer_cycles,
            shards=self.shards, shard_cycles=tuple(shard_cycles),
            critical_path_cycles=critical, merge_cycles=merge,
            critical_shard_index=_argmax(shard_cycles),
            merge_hops=merge_hops, fill_drain_cycles=fill_drain,
            noc=self.noc,
        )
