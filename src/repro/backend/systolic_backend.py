"""Hardware-in-the-loop execution backend: the quantized systolic datapath.

Runs the Q network the way the paper's accelerator does:

* **Numerics** — weights and activations live as fixed-point raw integer
  codes; each Conv2D becomes one batched im2col + integer GEMM and each
  Dense one integer vector-matrix product through the shared kernels
  (:mod:`repro.systolic.kernels`), with saturating re-quantisation into
  the activation format after every layer.  Because every intermediate
  product is an exact integer well inside float64's 2^53 mantissa, this
  raw-integer path is bitwise-identical to
  :meth:`~repro.nn.quantize.QuantizedNetwork.predict_batch` (proven in
  ``tests/test_backend.py``).
* **Cycles** — closed-form accounting from :mod:`repro.systolic.cycles`:
  row-stationary conv schedules scale per image, FC tile loads amortise
  across the batch (weight reuse, the Fig. 13 effect).
* **Fidelity passthrough** — ``fidelity="pe"`` routes the arithmetic
  through the loop-level PE oracle instead of the GEMM kernels; outputs
  and counters are identical (same exact-integer argument), just slow.
  Intended for validation on reduced shapes.

``quantized=False`` disables the fixed-point datapath and serves float
numerics while still charging cycles — the post-hoc "cost this
observation batch" mode.  :meth:`SystolicBackend.forward_layer` exposes
the per-layer primitive (one conv or FC pass on this array) that the
multi-array :class:`~repro.backend.sharded.ShardedBackend` composes.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ExecutionBackend, StepCost, register_backend
from repro.fixedpoint.qformat import QFormat, Q2_13, Q8_8
from repro.nn.layers import Conv2D, Dense
from repro.nn.network import Network
from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.cycles import conv_rowstationary_stats, fc_tile_stats
from repro.systolic.fc_functional import simulate_fc_forward
from repro.systolic.functional import FunctionalSystolicArray, check_fidelity
from repro.systolic.kernels import conv2d_gemm, fc_forward_gemm

__all__ = ["SystolicBackend"]


@register_backend("systolic")
class SystolicBackend(ExecutionBackend):
    """Quantized fixed-point inference with per-step cycle budgets.

    Parameters
    ----------
    network:
        The trained float network (not modified); weights quantise once
        into ``weight_format`` raw codes at construction.
    config:
        Array geometry (defaults to the paper's 32x32 grid at 1 GHz).
    fidelity:
        ``"fast"`` (default) for batched GEMM numerics with closed-form
        cycles, ``"pe"`` for the loop-level oracle passthrough.
    quantized:
        ``False`` disables the fixed-point datapath and runs float
        numerics (matching ``Network.predict``) while still charging
        cycles — for costing a batch without quantising the policy.
    weight_format / activation_format:
        The 16-bit corners of the paper's datapath.
    """

    def __init__(
        self,
        network: Network,
        config: ArrayConfig | None = None,
        fidelity: str = "fast",
        quantized: bool = True,
        weight_format: QFormat = Q2_13,
        activation_format: QFormat = Q8_8,
    ):
        check_fidelity(fidelity)
        self.network = network
        self.config = config or PAPER_ARRAY
        self.fidelity = fidelity
        self.quantized = quantized
        self.weight_format = weight_format
        self.activation_format = activation_format
        # Raw integer codes (datapath operands) and their float values
        # (for the PE-oracle passthrough and bias adds).
        self._raw: dict[str, np.ndarray] = {}
        self._value: dict[str, np.ndarray] = {}
        self.sync()

    def sync(self) -> None:
        """Re-quantise the live float weights into datapath operands.

        Construction models the one-time model download; the agent
        calls this after each online training update so the array
        executes with the written-back weights, not a stale snapshot.

        Raw codes are stored as float64-valued integers: every product
        and partial sum of the datapath stays below 2^53, so the GEMMs
        are exact in float64 — same integers as an int64 matmul — while
        dispatching to BLAS instead of NumPy's slow integer loop.

        Float mode copies the values: the snapshot must not alias the
        live parameters, or in-place optimizer updates would leak into
        the datapath between syncs and the weight bus's staleness
        would be fictitious.
        """
        for p in self.network.parameters():
            if self.quantized:
                raw = self.weight_format.to_raw(p.value)
                self._raw[p.name] = raw.astype(np.float64)
                self._value[p.name] = self.weight_format.from_raw(raw)
            else:
                self._value[p.name] = p.value.copy()

    # ------------------------------------------------------------------
    # Serving-buffer seam (fault injection / detection)
    # ------------------------------------------------------------------
    def weight_buffers(self) -> dict[str, np.ndarray]:
        """The arrays the datapath reads: raw codes (or float values)."""
        return self._raw if self.quantized else self._value

    def corrupt_weight_bit(self, name: str, index: int, bit: int) -> None:
        """Flip one stored bit of parameter ``name`` (SRAM soft error).

        The flip happens in the two's-complement raw code; the derived
        float value is recomputed so the GEMM operands (``_raw``) and
        the bias/oracle operands (``_value``) stay consistent, exactly
        as a real upset in the single stored copy would present.
        """
        from repro.faults.recovery import flip_raw_bit

        fmt = self.weight_format
        if self.quantized:
            flat = self._raw[name].reshape(-1)
            flat[index] = float(flip_raw_bit(int(flat[index]), bit, fmt))
            self._value[name] = fmt.from_raw(self._raw[name].astype(np.int64))
        else:
            flat = self._value[name].reshape(-1)
            raw = flip_raw_bit(int(fmt.to_raw(flat[index])), bit, fmt)
            flat[index] = float(fmt.from_raw(raw))

    def _refresh_weight_values(self) -> None:
        if self.quantized:
            for name, raw in self._raw.items():
                self._value[name] = self.weight_format.from_raw(
                    raw.astype(np.int64)
                )

    # ------------------------------------------------------------------
    def _weights(self, layer) -> tuple[np.ndarray, np.ndarray]:
        """(weight values, bias values) the datapath executes with."""
        return self._value[layer.weight.name], self._value[layer.bias.name]

    def _requantize(self, x: np.ndarray) -> np.ndarray:
        return self.activation_format.quantize(x) if self.quantized else x

    def _conv(self, layer: Conv2D, x: np.ndarray, pe_sim) -> tuple[np.ndarray, int, int]:
        """One conv layer: output (bias added), cycles, MACs."""
        w, b = self._weights(layer)
        n, c, h, wid = x.shape
        if self.fidelity == "pe":
            out, stats = pe_sim.conv2d(x, w, stride=layer.stride, pad=layer.pad)
        else:
            if self.quantized:
                # Integer GEMM on raw codes: act raw (scale 2^-fa) times
                # weight raw (scale 2^-fw) accumulates exactly at scale
                # 2^-(fa+fw); one multiply recovers the real value.
                raw = conv2d_gemm(
                    self.activation_format.to_raw(x).astype(np.float64),
                    self._raw[layer.weight.name],
                    stride=layer.stride,
                    pad=layer.pad,
                )
                out = raw * (self.activation_format.scale * self.weight_format.scale)
            else:
                out = conv2d_gemm(x, w, stride=layer.stride, pad=layer.pad)
            stats = conv_rowstationary_stats(
                c, h + 2 * layer.pad, wid + 2 * layer.pad,
                layer.out_channels, layer.kernel_size, layer.kernel_size,
                stride=layer.stride, config=self.config, batch=n,
            )
        out = out + b[None, :, None, None]
        return out, stats.total_cycles, stats.total_pe_cycles

    def _dense(self, layer: Dense, x: np.ndarray) -> tuple[np.ndarray, int, int]:
        """One FC layer: output (bias added), cycles, MACs."""
        w, b = self._weights(layer)
        n = x.shape[0]
        if self.fidelity == "pe":
            result = simulate_fc_forward(x, w, array=self.config, fidelity="pe")
            out, cycles, macs = result.output, result.total_cycles, result.mac_cycles
        else:
            if self.quantized:
                raw = fc_forward_gemm(
                    self.activation_format.to_raw(x).astype(np.float64),
                    self._raw[layer.weight.name],
                )
                out = raw * (self.activation_format.scale * self.weight_format.scale)
            else:
                out = fc_forward_gemm(x, w)
            sched = fc_tile_stats(
                layer.in_features, layer.out_features, self.config, batch=n
            )
            cycles, macs = sched.total_cycles, sched.mac_cycles
        return out + b, cycles, macs

    def forward_layer(
        self, layer, x: np.ndarray, pe_sim=None
    ) -> tuple[np.ndarray, int, int]:
        """One parametric layer on this array: ``(output, cycles, macs)``.

        The single-layer primitive multi-array composition builds on:
        a :class:`~repro.backend.sharded.ShardedBackend` hands each
        child array its slice of a layer (full input, a subset of the
        output channels / features) and merges the outputs.  Bias is
        added; the activation re-quantisation between layers is the
        caller's job — it must happen *after* shard outputs merge, and
        it is elementwise, so merge-then-quantise equals
        quantise-then-merge and the sharded datapath stays bitwise
        equal to this single-array path.
        """
        if isinstance(layer, Conv2D):
            if self.fidelity == "pe" and pe_sim is None:
                pe_sim = FunctionalSystolicArray(self.config, fidelity="pe")
            return self._conv(layer, x, pe_sim)
        if isinstance(layer, Dense):
            return self._dense(layer, x)
        raise TypeError(
            f"forward_layer handles Conv2D/Dense, got {type(layer).__name__}"
        )

    # ------------------------------------------------------------------
    def train_cost(
        self,
        batch_size: int,
        state_shape: tuple[int, ...],
        first_trainable: int = 0,
    ) -> StepCost:
        """Closed-form cost of one batch-N training step on this array.

        Whole-network accounting from :mod:`repro.systolic.training`:
        the batch's forward passes over every layer plus, for layers at
        index >= ``first_trainable``, the Section V.B backward GEMMs
        (dW outer product and the Fig. 8 transposed dX).  Pure shape
        arithmetic — no numerics execute, so charging every agent
        update is cheap.  Training numerics themselves stay in float
        off the datapath (the paper's split); this models what running
        them *on* the array would cost it.
        """
        from repro.systolic.training import network_training_step_cost

        step = network_training_step_cost(
            self.network, state_shape, batch_size,
            config=self.config, first_trainable=first_trainable,
        )
        layer_cycles: dict[str, int] = {}
        for layer in step.layers:
            name = layer.name
            while name in layer_cycles:
                name += "'"
            layer_cycles[name] = layer.total_cycles
        return StepCost(
            backend=self.name, states=batch_size,
            macs=step.total_macs, layer_cycles=layer_cycles,
        )

    def forward_batch(self, states: np.ndarray) -> tuple[np.ndarray, StepCost]:
        x = np.asarray(states, dtype=np.float64)
        if x.ndim != 4:
            raise ValueError(f"expected an (N, C, H, W) state batch, got {x.shape}")
        n = x.shape[0]
        x = self._requantize(x)
        pe_sim = (
            FunctionalSystolicArray(self.config, fidelity="pe")
            if self.fidelity == "pe"
            else None
        )
        layer_cycles: dict[str, int] = {}
        total_macs = 0

        def charge(name: str, cycles: int) -> None:
            # Layer names are not guaranteed unique; never let a
            # duplicate silently swallow another layer's cycles.
            while name in layer_cycles:
                name += "'"
            layer_cycles[name] = cycles

        for layer in self.network.layers:
            if isinstance(layer, (Conv2D, Dense)):
                x, cycles, macs = self.forward_layer(layer, x, pe_sim)
                charge(layer.name, cycles)
                total_macs += macs
            else:
                # ReLU runs on the PE comparators, pooling/flatten on the
                # vector units — shape bookkeeping here, no MAC cycles.
                x = layer.forward(x, training=False)
            x = self._requantize(x)
        cost = StepCost(
            backend=self.name, states=n, macs=total_macs, layer_cycles=layer_cycles
        )
        return x, cost
