"""Pluggable execution backends for the Q network.

One seam — :meth:`ExecutionBackend.forward_batch(states) ->
(q_values, StepCost)` — replaces the four places that used to
re-implement "run the network": the agent's float predict, the
quantised network, the systolic fast path and the fleet scheduler's
post-hoc batch costing.  Three registered implementations:

* ``numpy`` — :class:`NumpyBackend`, the float path, zero overhead and
  zero cycle budget (the default; bitwise-identical to the historical
  agent behaviour);
* ``quantized`` — :class:`QuantizedBackend`, 16-bit fixed-point
  numerics with per-layer re-quantisation, no cycle model;
* ``systolic`` — :class:`SystolicBackend`, the accelerator-in-the-loop
  path: integer GEMM numerics on quantized raw codes through the shared
  systolic kernels plus closed-form per-step cycle budgets, with a
  ``fidelity="pe"`` oracle passthrough.

``python -m repro fleet --backend {numpy,quantized,systolic}`` selects
one for whole fleet rollouts; this is the seam multi-array sharding,
async rollouts and batch weight-reuse experiments plug into.
"""

from repro.backend.base import (
    BACKENDS,
    ExecutionBackend,
    StepCost,
    make_backend,
    merge_step_costs,
    register_backend,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.quantized_backend import QuantizedBackend
from repro.backend.systolic_backend import SystolicBackend

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "StepCost",
    "make_backend",
    "merge_step_costs",
    "register_backend",
    "NumpyBackend",
    "QuantizedBackend",
    "SystolicBackend",
]
