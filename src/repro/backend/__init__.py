"""Pluggable execution backends for the Q network.

One seam — :meth:`ExecutionBackend.forward_batch(states) ->
(q_values, StepCost)` — replaces the four places that used to
re-implement "run the network": the agent's float predict, the
quantised network, the systolic fast path and the fleet scheduler's
post-hoc batch costing.  Four registered implementations:

* ``numpy`` — :class:`NumpyBackend`, the float path, zero overhead and
  zero cycle budget (the default; bitwise-identical to the historical
  agent behaviour);
* ``quantized`` — :class:`QuantizedBackend`, 16-bit fixed-point
  numerics with per-layer re-quantisation, no cycle model;
* ``systolic`` — :class:`SystolicBackend`, the accelerator-in-the-loop
  path: integer GEMM numerics on quantized raw codes through the shared
  systolic kernels plus closed-form per-step cycle budgets, with a
  ``fidelity="pe"`` oracle passthrough;
* ``sharded`` — :class:`ShardedBackend`, K systolic arrays behind one
  seam (``shard="sample"`` splits the batch, ``shard="layer"`` splits
  conv filters / FC output neurons), bitwise-equal to the single-array
  path and reporting per-array / critical-path cycle budgets as a
  :class:`ShardCost`.

Training-side weight updates reach a deployed datapath through the
double-buffered :class:`WeightBus` (flip every ``sync_every`` updates,
tracked staleness) instead of a synchronous per-update ``sync()``.

``python -m repro fleet --backend {numpy,quantized,systolic,sharded}``
selects one for whole fleet rollouts.
"""

from repro.backend.base import (
    BACKENDS,
    ExecutionBackend,
    ShardCost,
    StepCost,
    StepCostAccumulator,
    WeightBus,
    make_backend,
    merge_step_costs,
    register_backend,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.quantized_backend import QuantizedBackend
from repro.backend.systolic_backend import SystolicBackend
from repro.backend.sharded import SHARD_POLICIES, ShardedBackend

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "StepCost",
    "ShardCost",
    "StepCostAccumulator",
    "WeightBus",
    "make_backend",
    "merge_step_costs",
    "register_backend",
    "NumpyBackend",
    "QuantizedBackend",
    "SystolicBackend",
    "ShardedBackend",
    "SHARD_POLICIES",
]
