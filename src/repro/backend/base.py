"""Execution-backend interface and per-step cost accounting.

Every consumer that needs "run the Q network over a batch of states"
goes through one seam: :meth:`ExecutionBackend.forward_batch` takes an
(N, C, H, W) state batch and returns ``(q_values, StepCost)`` — the
Q values the backend's datapath produces and the cycles the modelled
accelerator charges for producing them.  The agent routes action
selection through its backend, the fleet scheduler threads the returned
:class:`StepCost` totals into its round reports, and the traffic
projection consumes the measured cycles — so swapping a backend swaps
the numerics *and* the hardware accounting everywhere at once.

Backends register themselves under a short name (``numpy``,
``quantized``, ``systolic``) via :func:`register_backend`;
:func:`make_backend` resolves CLI-style names to instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.network import Network
from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = [
    "StepCost",
    "merge_step_costs",
    "ExecutionBackend",
    "BACKENDS",
    "register_backend",
    "make_backend",
]


@dataclass(frozen=True)
class StepCost:
    """Accelerator cost of one ``forward_batch`` call (or a merged run).

    ``layer_cycles`` maps layer names to the array cycles charged for
    that layer (empty for backends without a hardware model, e.g. the
    float NumPy path, whose cost is identically zero).  ``macs`` counts
    multiply-accumulates, ``states`` the state vectors served.
    """

    backend: str
    states: int
    macs: int = 0
    layer_cycles: dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        """Array cycles across all layers."""
        return sum(self.layer_cycles.values())

    @property
    def cycles_per_state(self) -> float:
        """Average array cycles per state served."""
        return self.total_cycles / self.states if self.states else 0.0

    def array_seconds(self, config: ArrayConfig = PAPER_ARRAY) -> float:
        """Time the modelled array needs for this cost."""
        return config.seconds(self.total_cycles)


def merge_step_costs(costs: list[StepCost], backend: str = "") -> StepCost:
    """Sum a sequence of :class:`StepCost` records into one total.

    Layer cycles merge key-wise, ``states``/``macs`` add.  An empty list
    merges to a zero cost (useful for rounds where every action explored
    and no forward pass ran).
    """
    layer_cycles: dict[str, int] = {}
    states = macs = 0
    for cost in costs:
        states += cost.states
        macs += cost.macs
        for name, cycles in cost.layer_cycles.items():
            layer_cycles[name] = layer_cycles.get(name, 0) + cycles
        if not backend:
            backend = cost.backend
    return StepCost(
        backend=backend, states=states, macs=macs, layer_cycles=layer_cycles
    )


class ExecutionBackend:
    """Abstract "run the network" seam shared by agent, fleet and CLI.

    Subclasses implement :meth:`forward_batch`; everything else (greedy
    action extraction, agreement measurement) is derived.  Each backend
    wraps a float :class:`~repro.nn.network.Network` — the single source
    of weights — and decides how those weights execute: float NumPy,
    16-bit fixed point, or the functional systolic datapath.
    """

    #: Registry name; set by :func:`register_backend`.
    name: str = "abstract"

    #: The wrapped float network (set by subclass constructors).
    network: Network

    def forward_batch(self, states: np.ndarray) -> tuple[np.ndarray, StepCost]:
        """Q values and accelerator cost for an (N, C, H, W) state batch."""
        raise NotImplementedError

    def sync(self) -> None:
        """Refresh any internal snapshot of the network's weights.

        Quantised backends capture weight codes at construction (the
        paper's model download); after an online training update the
        agent calls this so the deployed datapath sees the new weights
        — the SRAM write-back of Fig. 3b.  The float path has no
        snapshot, so the default is a no-op.
        """

    def greedy_actions(self, states: np.ndarray) -> tuple[np.ndarray, StepCost]:
        """Argmax actions (N,) for a state batch, with the step cost."""
        q_values, cost = self.forward_batch(states)
        return np.argmax(q_values, axis=1).astype(np.int64), cost

    def agreement_rate(self, states: np.ndarray) -> float:
        """Fraction of states whose greedy action matches the float policy.

        1.0 for backends that *are* the float policy; for quantised
        datapaths this is the paper's "does the policy survive 16-bit
        arithmetic" number.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim < 2 or states.shape[0] == 0:
            raise ValueError("states must be a non-empty batch")
        backend_actions, _ = self.greedy_actions(states)
        float_actions = np.argmax(self.network.predict(states), axis=1)
        return float(np.mean(backend_actions == float_actions))


#: Registered backend classes by CLI name.
BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(name: str):
    """Class decorator: register a backend under ``name``."""

    def decorator(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
        cls.name = name
        BACKENDS[name] = cls
        return cls

    return decorator


def make_backend(name: str, network: Network, **kwargs) -> ExecutionBackend:
    """Instantiate a registered backend by name (the CLI entry point)."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; registered: {sorted(BACKENDS)}"
        )
    return BACKENDS[name](network, **kwargs)
