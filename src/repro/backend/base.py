"""Execution-backend interface and per-step cost accounting.

Every consumer that needs "run the Q network over a batch of states"
goes through one seam: :meth:`ExecutionBackend.forward_batch` takes an
(N, C, H, W) state batch and returns ``(q_values, StepCost)`` — the
Q values the backend's datapath produces and the cycles the modelled
accelerator charges for producing them.  The agent routes action
selection through its backend, the fleet scheduler threads the returned
:class:`StepCost` totals into its round reports, and the traffic
projection consumes the measured cycles — so swapping a backend swaps
the numerics *and* the hardware accounting everywhere at once.

Backends register themselves under a short name (``numpy``,
``quantized``, ``systolic``, ``sharded``) via :func:`register_backend`;
:func:`make_backend` resolves CLI-style names to instances.

Two further pieces live here because every backend shares them:

* :class:`ShardCost` — a :class:`StepCost` that additionally carries
  per-array cycle totals, the critical-path cycles of the parallel
  schedule and the merge/broadcast overhead, produced by the
  multi-array :class:`~repro.backend.sharded.ShardedBackend`;
* :class:`WeightBus` — the double-buffered weight path between the
  float trainer and a deployed datapath, replacing the synchronous
  per-update ``backend.sync()`` write-back with a configurable flip
  cadence and a tracked staleness counter.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

import numpy as np

from repro.faults.injector import FAULTS
from repro.faults.recovery import buffer_checksum
from repro.nn.network import Network
from repro.obs.probes import PROBE
from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = [
    "StepCost",
    "ShardCost",
    "StepCostAccumulator",
    "merge_step_costs",
    "WeightBus",
    "ExecutionBackend",
    "BACKENDS",
    "register_backend",
    "make_backend",
]


@dataclass(frozen=True)
class StepCost:
    """Accelerator cost of one ``forward_batch`` call (or a merged run).

    ``layer_cycles`` maps layer names to the array cycles charged for
    that layer (empty for backends without a hardware model, e.g. the
    float NumPy path, whose cost is identically zero).  ``macs`` counts
    multiply-accumulates, ``states`` the state vectors served.
    """

    backend: str
    states: int
    macs: int = 0
    layer_cycles: dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        """Array cycles across all layers."""
        return sum(self.layer_cycles.values())

    @property
    def cycles_per_state(self) -> float:
        """Average array cycles per state served."""
        return self.total_cycles / self.states if self.states else 0.0

    def array_seconds(self, config: ArrayConfig = PAPER_ARRAY) -> float:
        """Time the modelled array needs for this cost."""
        return config.seconds(self.total_cycles)

    # Single-array view of the sharded fields, so consumers (the fleet
    # scheduler, the traffic projection) read one shape of record.
    @property
    def shards(self) -> int:
        """Number of arrays this cost executed on (1 for plain costs)."""
        return 1

    @property
    def critical_path_cycles(self) -> int:
        """Wall-clock cycles of the schedule; all of them on one array."""
        return self.total_cycles

    @property
    def merge_cycles(self) -> int:
        """Inter-array merge/broadcast cycles (none on one array)."""
        return 0

    @property
    def merge_hops(self) -> int:
        """Element-hops of inter-array traffic (none on one array)."""
        return 0

    @property
    def fill_drain_cycles(self) -> int:
        """Pipeline fill/drain bubble cycles (none on one array)."""
        return 0

    @property
    def noc(self) -> str:
        """Inter-array NoC topology the merge was costed on."""
        return "flat"

    @property
    def critical_shard_index(self) -> int:
        """Index of the array on the critical path (0: only one array)."""
        return 0


@dataclass(frozen=True)
class ShardCost(StepCost):
    """A :class:`StepCost` executed across K parallel arrays.

    ``layer_cycles`` (and so ``total_cycles``) keep their meaning of
    *work*: the cycles summed over every array, the number a single
    array would need to burn serially (plus the replicated FC tile
    loads each array charges for its own copy).  The parallel schedule
    adds three fields:

    * ``shard_cycles`` — per-array totals over the run (index = array);
    * ``critical_path_cycles`` — the wall-clock cycles of the parallel
      schedule: per forward pass, the slowest array (sample sharding)
      or the sum over layers of the slowest array per layer (layer
      sharding), plus the merge/broadcast cycles.  Merged records sum
      their critical paths — forwards are serialized by the rollout
      loop even when each one is internally parallel;
    * ``merge_cycles`` — the inter-array traffic charged for gathering
      shard outputs (and, under layer sharding, re-broadcasting the
      merged activation), costed on the backend's
      :class:`~repro.systolic.noc.NocModel` (the default ``flat``
      topology is exactly the legacy one-element-per-link-cycle model);
    * ``merge_hops`` — element-hops of that traffic (== the element
      count under ``flat``'s single hop; larger on ring/mesh hauls);
    * ``fill_drain_cycles`` — schedule bubbles: cycles the critical
      path spent waiting on pipeline fill/drain (``shard="pipeline"``
      only; zero for the barrier policies);
    * ``noc`` — the topology name the merge was costed on;
    * ``critical_shard_index`` — which array burned the most cycles,
      i.e. the one the wall clock waited on.  The fleet report and the
      obs layer use it to label the slow span; ties break toward the
      lowest index (``argmax`` semantics).
    """

    shards: int = 1
    shard_cycles: tuple[int, ...] = ()
    critical_path_cycles: int = 0
    merge_cycles: int = 0
    critical_shard_index: int = 0
    merge_hops: int = 0
    fill_drain_cycles: int = 0
    noc: str = "flat"

    @property
    def parallel_speedup(self) -> float:
        """Work cycles over critical-path cycles (<= ``shards``)."""
        if self.critical_path_cycles <= 0:
            return 1.0
        return self.total_cycles / self.critical_path_cycles

    @property
    def scaling_efficiency(self) -> float:
        """Parallel speedup per array (1.0 = perfect scaling)."""
        return self.parallel_speedup / self.shards if self.shards else 0.0

    def critical_path_seconds(self, config: ArrayConfig = PAPER_ARRAY) -> float:
        """Wall-clock time of the parallel schedule on the modelled arrays."""
        return config.seconds(self.critical_path_cycles)


class StepCostAccumulator:
    """Streaming, in-place equivalent of :func:`merge_step_costs`.

    The agent's pending-cost ledgers and the scheduler's per-phase cycle
    peeks used to rebuild a merged record from the full list on every
    update — O(K²) in the number of accumulated records.  The
    accumulator folds each record in once (O(layers + shards) per
    :meth:`add`), keeps a running ``total_cycles`` readable in O(1), and
    materialises the same :class:`StepCost`/:class:`ShardCost` a list
    merge would have produced only when :meth:`merge` is called.

    Sharded-vs-plain is decided at merge time, not add time: per-array
    totals accumulate unconditionally (a plain record charges array 0),
    so plain records arriving before the first :class:`ShardCost` fold
    identically to :func:`merge_step_costs`'s two-pass behaviour.
    """

    __slots__ = (
        "_backend", "_states", "_macs", "_layer_cycles", "_total",
        "_count", "_sharded", "_shards", "_critical", "_merge",
        "_shard_cycles", "_merge_hops", "_fill_drain", "_noc",
    )

    def __init__(self, backend: str = ""):
        self._backend = backend
        self.reset()

    def reset(self) -> None:
        """Zero every tally (the bound backend name survives)."""
        self._states = 0
        self._macs = 0
        self._layer_cycles: dict[str, int] = {}
        self._total = 0
        self._count = 0
        self._sharded = False
        self._shards = 0
        self._critical = 0
        self._merge = 0
        self._shard_cycles: list[int] = []
        self._merge_hops = 0
        self._fill_drain = 0
        self._noc = "flat"

    def add(self, cost: StepCost) -> None:
        """Fold one record into the running totals."""
        self._count += 1
        self._states += cost.states
        self._macs += cost.macs
        layer_cycles = self._layer_cycles
        for name, cycles in cost.layer_cycles.items():
            layer_cycles[name] = layer_cycles.get(name, 0) + cycles
            self._total += cycles
        if not self._backend:
            self._backend = cost.backend
        if isinstance(cost, ShardCost):
            self._sharded = True
            per_array = cost.shard_cycles
        else:
            per_array = (cost.total_cycles,)
        self._shards = max(self._shards, cost.shards)
        self._critical += cost.critical_path_cycles
        self._merge += cost.merge_cycles
        self._merge_hops += cost.merge_hops
        self._fill_drain += cost.fill_drain_cycles
        if cost.noc != "flat":
            self._noc = cost.noc
        shard_cycles = self._shard_cycles
        if len(per_array) > len(shard_cycles):
            shard_cycles.extend([0] * (len(per_array) - len(shard_cycles)))
        for i, cycles in enumerate(per_array):
            shard_cycles[i] += cycles

    def __len__(self) -> int:
        return self._count

    @property
    def total_cycles(self) -> int:
        """Running work-cycle total, O(1) — the hot scheduler peek."""
        return self._total

    def merge(self) -> StepCost:
        """The merged record so far (does not reset the accumulator)."""
        if self._sharded:
            # The critical shard is recomputed from the merged per-array
            # totals: the array that burned the most cycles over the
            # whole run, not whichever array happened to be slow in the
            # last constituent record.
            shard_cycles = self._shard_cycles
            critical_index = (
                max(range(len(shard_cycles)), key=shard_cycles.__getitem__)
                if shard_cycles
                else 0
            )
            return ShardCost(
                backend=self._backend, states=self._states, macs=self._macs,
                layer_cycles=dict(self._layer_cycles), shards=self._shards,
                shard_cycles=tuple(shard_cycles),
                critical_path_cycles=self._critical,
                merge_cycles=self._merge,
                critical_shard_index=critical_index,
                merge_hops=self._merge_hops,
                fill_drain_cycles=self._fill_drain,
                noc=self._noc,
            )
        return StepCost(
            backend=self._backend, states=self._states, macs=self._macs,
            layer_cycles=dict(self._layer_cycles),
        )

    def drain(self) -> StepCost:
        """:meth:`merge`, then reset — the per-round ledger handoff."""
        merged = self.merge()
        self.reset()
        return merged


def merge_step_costs(costs: list[StepCost], backend: str = "") -> StepCost:
    """Sum a sequence of :class:`StepCost` records into one total.

    Layer cycles merge key-wise, ``states``/``macs`` add.  An empty list
    merges to a zero cost (useful for rounds where every action explored
    and no forward pass ran).  When any record is a :class:`ShardCost`
    the merge stays sharded: per-array totals add index-wise (a plain
    single-array record charges array 0), critical paths add — the
    forwards ran one after another — and the result is a
    :class:`ShardCost` over the widest shard count seen.

    One-shot wrapper over :class:`StepCostAccumulator`; callers merging
    incrementally in a loop should hold an accumulator instead.
    """
    acc = StepCostAccumulator(backend)
    for cost in costs:
        acc.add(cost)
    return acc.merge()


class WeightBus:
    """Double-buffered weight path between the trainer and the datapath.

    The paper's split — training in float off-device, inference on the
    quantised array — used to be modelled with a *synchronous* write-back:
    every ``train_step`` called ``backend.sync()``, stalling the serving
    datapath behind each float update.  The bus decouples them with two
    buffers:

    * the **staging buffer** is the live float network the optimizer
      writes continuously (:meth:`publish` marks each completed update);
    * the **serving buffer** is the backend's quantised snapshot, which
      only refreshes when the bus *flips* — every ``sync_every``
      published updates (the SRAM weight download of Fig. 3b, now
      amortised over several updates).

    Between flips the datapath serves weights that are up to
    ``sync_every - 1`` updates stale; :attr:`staleness` tracks how many
    published updates the serving snapshot is currently behind, and
    :meth:`note_serve` accumulates the staleness each served state
    actually saw, so the agreement/staleness tradeoff is measured rather
    than implicit.  ``sync_every=1`` reproduces the old synchronous
    behaviour exactly.  A backend with no snapshot
    (``has_snapshot=False``, the float path) always serves the live
    weights: its bus never accumulates staleness, whatever the cadence.
    """

    def __init__(self, backend: "ExecutionBackend", sync_every: int = 1):
        if sync_every <= 0:
            raise ValueError("sync_every must be positive")
        self.backend = backend
        self.sync_every = sync_every if backend.has_snapshot else 1
        #: Published updates the serving snapshot is currently behind.
        self.staleness = 0
        #: Updates published since construction.
        self.publishes = 0
        #: Buffer flips (datapath downloads) since construction.
        self.flips = 0
        self._serve_staleness_sum = 0
        self._serves = 0
        # Fault-tolerance state: last checksum-good serving snapshot
        # (only maintained while the FAULTS seam is active) and the
        # record of a dropped-but-not-yet-recovered flip.
        self._good_buffers: dict[str, np.ndarray] | None = None
        self._good_checksum: int | None = None
        self._dropped = None

    def publish(self) -> bool:
        """Record one completed training update in the staging buffer.

        Flips the serving buffer when ``sync_every`` updates have
        accumulated; returns whether this publish flipped.
        """
        self.publishes += 1
        self.staleness += 1
        if PROBE.enabled:
            PROBE.count(
                "repro_weightbus_publishes_total",
                help="Training updates published to the staging buffer.",
            )
        if FAULTS.enabled and self.backend.weight_buffers() is not None:
            return self._publish_chaos()
        if self.staleness >= self.sync_every:
            self.flip()
            return True
        if PROBE.enabled:
            PROBE.gauge(
                "repro_weightbus_staleness_updates",
                self.staleness,
                help="Updates the serving snapshot is currently behind.",
            )
        return False

    def flip(self) -> None:
        """Download the staged weights into the serving datapath now."""
        with PROBE.span("weightbus.flip", staleness=self.staleness):
            self.backend.sync()
        if FAULTS.enabled and self.backend.weight_buffers() is not None:
            self._flip_chaos()
        self.flips += 1
        self.staleness = 0
        if PROBE.enabled:
            PROBE.count(
                "repro_weightbus_flips_total",
                help="Serving-buffer flips (datapath weight downloads).",
            )
            PROBE.gauge(
                "repro_weightbus_staleness_updates",
                0,
                help="Updates the serving snapshot is currently behind.",
            )

    # ------------------------------------------------------------------
    # Fault injection / detection / recovery (FAULTS seam active only)
    # ------------------------------------------------------------------
    def _publish_chaos(self) -> bool:
        """Chaos-mode :meth:`publish`: verify, recover, inject, flip.

        Order matters for determinism and detectability: first the
        integrity check of the serving buffer (catching bit flips
        injected on earlier publishes — checksum mismatch rolls back to
        the last checksum-good snapshot), then the staleness watchdog
        (a dropped flip is force-flipped once staleness exceeds the
        ``sync_every`` bound), then the flip-or-drop decision, and only
        then a fresh soft-error draw against whatever snapshot is now
        serving.
        """
        inj = FAULTS.injector
        update = inj.note_update()
        if self._good_checksum is None:
            self._capture_good()
        elif self.backend.weight_checksum() != self._good_checksum:
            self._rollback(inj)
        if self._dropped is not None and self.staleness > self.sync_every:
            rec, self._dropped = self._dropped, None
            inj.mark_detected(rec)
            with PROBE.span("recovery", kind="weightbus.watchdog"):
                self.flip()
            inj.add_recovery_cycles(inj.plan.retry_timeout_cycles)
            inj.mark_recovered(rec, detail="staleness watchdog forced flip")
            return True
        flipped = False
        if self.staleness >= self.sync_every:
            if inj.drop_publish(update):
                self._dropped = inj.record(
                    "publish.drop",
                    target="weightbus",
                    detail=f"staleness={self.staleness}",
                )
            else:
                self.flip()
                flipped = True
        if not flipped and PROBE.enabled:
            PROBE.gauge(
                "repro_weightbus_staleness_updates",
                self.staleness,
                help="Updates the serving snapshot is currently behind.",
            )
        rng = inj.sram_flip_rng(update)
        if rng is not None and self._good_checksum is not None:
            name, index, bit = self._pick_bit(rng)
            self.backend.corrupt_weight_bit(name, index, bit)
            inj.record("sram.flip", target=name, detail=f"bit={bit}")
        return flipped

    def _flip_chaos(self) -> None:
        """Chaos-mode tail of :meth:`flip`: corrupt, verify, re-sync.

        The checksum of the freshly synced buffers is ground truth; an
        injected download corruption is detected by re-verifying against
        it and repaired by bounded re-sync retries with exponential
        backoff, falling back to a rollback onto the last good snapshot
        when every retry draw stays corrupted.  Ends by capturing the
        (now good) snapshot as the rollback target for later publishes.
        """
        inj = FAULTS.injector
        plan = inj.plan
        good = self.backend.weight_checksum()
        rng = inj.corrupt_rng(self.flips + 1)
        if rng is not None:
            name, index, bit = self._pick_bit(rng)
            self.backend.corrupt_weight_bit(name, index, bit)
            rec = inj.record(
                "buffer.corrupt", target=name, detail=f"bit={bit}"
            )
            if self.backend.weight_checksum() != good:
                inj.mark_detected(rec)
                with PROBE.span("recovery", kind="weightbus.resync"):
                    attempts = 0
                    while (
                        self.backend.weight_checksum() != good
                        and attempts < plan.max_retries
                    ):
                        attempts += 1
                        inj.add_recovery_cycles(
                            int(
                                plan.retry_timeout_cycles
                                * plan.retry_backoff ** (attempts - 1)
                            )
                        )
                        self.backend.sync()
                        if rng.random() < plan.buffer_corruption_rate:
                            # The write glitch persisted into the retry.
                            name, index, bit = self._pick_bit(rng)
                            self.backend.corrupt_weight_bit(name, index, bit)
                    if self.backend.weight_checksum() == good:
                        inj.mark_recovered(
                            rec, detail=f"re-synced after {attempts} retries"
                        )
                    elif self._good_buffers is not None:
                        self.backend.restore_weight_buffers(self._good_buffers)
                        inj.mark_recovered(
                            rec, detail="rolled back to last good snapshot"
                        )
        self._capture_good()

    def _rollback(self, inj) -> None:
        """Serving-buffer integrity failure: restore the good snapshot."""
        for rec in inj.undetected(("sram.flip", "buffer.corrupt")):
            inj.mark_detected(rec)
        with PROBE.span("recovery", kind="weightbus.rollback"):
            self.backend.restore_weight_buffers(self._good_buffers)
        inj.add_recovery_cycles(inj.plan.retry_timeout_cycles)
        for rec in inj.events:
            if (
                rec.kind in ("sram.flip", "buffer.corrupt")
                and rec.detected
                and not rec.recovered
            ):
                inj.mark_recovered(rec, detail="checksum rollback on publish")

    def _capture_good(self) -> None:
        self._good_buffers = self.backend.snapshot_weight_buffers()
        self._good_checksum = self.backend.weight_checksum()

    def _pick_bit(self, rng) -> tuple[str, int, int]:
        """Draw a (buffer name, flat index, bit) target for a flip."""
        buffers = self.backend.weight_buffers()
        names = sorted(buffers)
        name = names[int(rng.integers(len(names)))]
        index = int(rng.integers(buffers[name].size))
        fmt = getattr(self.backend, "weight_format", None)
        bits = fmt.total_bits if fmt is not None else 16
        return name, index, int(rng.integers(bits))

    def note_serve(self, states: int = 1) -> None:
        """Record that ``states`` states were served at current staleness."""
        self._serve_staleness_sum += self.staleness * states
        self._serves += states

    def drain_serve_staleness(self) -> float:
        """Mean staleness (in updates) of states served since last drain."""
        mean = (
            self._serve_staleness_sum / self._serves if self._serves else 0.0
        )
        self._serve_staleness_sum = 0
        self._serves = 0
        return mean


class ExecutionBackend:
    """Abstract "run the network" seam shared by agent, fleet and CLI.

    Subclasses implement :meth:`forward_batch`; everything else (greedy
    action extraction, agreement measurement) is derived.  Each backend
    wraps a float :class:`~repro.nn.network.Network` — the single source
    of weights — and decides how those weights execute: float NumPy,
    16-bit fixed point, or the functional systolic datapath.
    """

    #: Registry name; set by :func:`register_backend`.
    name: str = "abstract"

    #: The wrapped float network (set by subclass constructors).
    network: Network

    #: Whether the backend serves from a captured weight snapshot.
    #: ``False`` means forwards always read the live network (the float
    #: path), so a :class:`WeightBus` in front of it has no staleness.
    has_snapshot: bool = True

    def forward_batch(self, states: np.ndarray) -> tuple[np.ndarray, StepCost]:
        """Q values and accelerator cost for an (N, C, H, W) state batch."""
        raise NotImplementedError

    def train_cost(
        self,
        batch_size: int,
        state_shape: tuple[int, ...],
        first_trainable: int = 0,
    ) -> StepCost:
        """Cost of one batch-N training iteration on this backend's array.

        Fig. 3b's iteration — N forward passes plus the backward GEMMs
        of the trainable tail (dL/dW and the Fig. 8 transposed dL/dX)
        and the weight update — executed on the same datapath that
        serves inference.  ``state_shape`` is one state's (C, H, W);
        ``first_trainable`` is the layer index where backpropagation
        stops, exactly as the agent holds it.

        The default models the paper's split — training runs off-device
        in float, charging the array nothing.  Backends with a hardware
        model override this with the closed-form whole-network
        training-step accounting (:mod:`repro.systolic.training`), so an
        agent constructed with ``train_on_array=True`` charges every
        update to the array it serves from.
        """
        return StepCost(backend=self.name, states=batch_size)

    def sync(self) -> None:
        """Refresh any internal snapshot of the network's weights.

        Quantised backends capture weight codes at construction (the
        paper's model download); after an online training update the
        agent calls this so the deployed datapath sees the new weights
        — the SRAM write-back of Fig. 3b.  The float path has no
        snapshot, so the default is a no-op.
        """

    # ------------------------------------------------------------------
    # Serving-buffer introspection (the fault-injection/detection seam)
    # ------------------------------------------------------------------
    def weight_buffers(self) -> dict[str, np.ndarray] | None:
        """The live serving weight buffers by name, or ``None``.

        Backends that serve from a captured snapshot expose the arrays
        the datapath actually reads, so the fault layer can checksum
        them, flip bits in them, and roll them back.  The float path
        has no serving snapshot distinct from the training weights and
        returns ``None`` — it is exempt from weight-buffer faults.
        """
        return None

    def weight_checksum(self) -> int:
        """CRC-32 fingerprint of the serving buffers (0 if none)."""
        return buffer_checksum(self.weight_buffers())

    def snapshot_weight_buffers(self) -> dict[str, np.ndarray] | None:
        """Deep copies of the serving buffers (a rollback target)."""
        buffers = self.weight_buffers()
        if buffers is None:
            return None
        return {name: arr.copy() for name, arr in buffers.items()}

    def restore_weight_buffers(self, saved: dict[str, np.ndarray]) -> None:
        """Write a snapshot back into the live serving buffers."""
        buffers = self.weight_buffers()
        if buffers is None:
            return
        for name, arr in saved.items():
            buffers[name][...] = arr
        self._refresh_weight_values()

    def corrupt_weight_bit(self, name: str, index: int, bit: int) -> None:
        """Flip one stored bit of serving buffer ``name`` (fault model).

        No-op by default: backends without a serving snapshot have no
        stored codes to upset.
        """

    def _refresh_weight_values(self) -> None:
        """Rebuild any state derived from the raw serving buffers."""

    def greedy_actions(self, states: np.ndarray) -> tuple[np.ndarray, StepCost]:
        """Argmax actions (N,) for a state batch, with the step cost."""
        q_values, cost = self.forward_batch(states)
        return np.argmax(q_values, axis=1).astype(np.int64), cost

    def agreement_rate(self, states: np.ndarray) -> float:
        """Fraction of states whose greedy action matches the float policy.

        1.0 for backends that *are* the float policy; for quantised
        datapaths this is the paper's "does the policy survive 16-bit
        arithmetic" number.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim < 2 or states.shape[0] == 0:
            raise ValueError("states must be a non-empty batch")
        backend_actions, _ = self.greedy_actions(states)
        float_actions = np.argmax(self.network.predict(states), axis=1)
        return float(np.mean(backend_actions == float_actions))


#: Registered backend classes by CLI name.
BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(name: str):
    """Class decorator: register a backend under ``name``."""

    def decorator(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
        cls.name = name
        BACKENDS[name] = cls
        return cls

    return decorator


def make_backend(name: str, network: Network, **kwargs) -> ExecutionBackend:
    """Instantiate a registered backend by name (the CLI entry point)."""
    if name not in BACKENDS:
        message = f"unknown backend {name!r}; registered: {sorted(BACKENDS)}"
        close = difflib.get_close_matches(name, BACKENDS, n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        raise ValueError(message)
    return BACKENDS[name](network, **kwargs)
