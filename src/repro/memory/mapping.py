"""Weight-to-memory mapping (Fig. 5).

Splits the CNN between the STT-MRAM stack and the SRAM global buffer:

* layers trained online (the TL configuration's FC tail) live in SRAM,
  and need a *second* SRAM allocation of equal size for the batch
  gradient accumulators (Section III.D);
* every other layer is frozen and lives in the STT-MRAM stack, which is
  therefore read-only during flight.

For the paper's proposed L3 design point on the modified AlexNet this
reproduces Fig. 5's arithmetic: 12.6 MB trainable weights + 12.6 MB
gradient accumulators + 4.2 MB scratchpad = 29.4 MB of SRAM, and
CONV+FC1+FC2 = 99.8 MB ≈ 100 MB of NVM.

Note: the paper's text quotes "FC2 ... is 29.38 MB"; at 16-bit weights
FC2 is 16.0 MB, and 29.4 MB is the *total buffer* derived two sentences
later.  We follow the self-consistent arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.specs import LayerSpec, NetworkSpec
from repro.rl.transfer import TransferConfig

__all__ = ["Placement", "MappingReport", "WeightMapper"]

#: The paper quotes capacities in decimal megabytes (12.6 MB for the
#: 6 299 653 16-bit weights of FC3..FC5), so we follow suit.
MB = 1e6


@dataclass(frozen=True)
class Placement:
    """Where one layer's weights live."""

    layer: str
    weights: int
    bytes: int
    device: str  # "nvm" or "sram"
    trainable: bool


@dataclass(frozen=True)
class MappingReport:
    """Capacity summary of a full mapping."""

    placements: tuple[Placement, ...]
    nvm_bytes: int
    sram_weight_bytes: int
    sram_gradient_bytes: int
    sram_scratchpad_bytes: int

    @property
    def sram_total_bytes(self) -> int:
        """Total SRAM demand including gradients and scratchpad."""
        return (
            self.sram_weight_bytes
            + self.sram_gradient_bytes
            + self.sram_scratchpad_bytes
        )

    @property
    def nvm_mb(self) -> float:
        """NVM demand in MB."""
        return self.nvm_bytes / MB

    @property
    def sram_total_mb(self) -> float:
        """SRAM demand in MB."""
        return self.sram_total_bytes / MB


class WeightMapper:
    """Maps a network's weights onto the platform memories.

    Parameters
    ----------
    spec:
        Network shape description.
    config:
        Transfer configuration — its trainable FC tail goes to SRAM.
    scratchpad_bytes:
        SRAM reserved for PE-array staging (the paper: 4.2 MB).
    """

    def __init__(
        self,
        spec: NetworkSpec,
        config: TransferConfig,
        scratchpad_bytes: int = int(4.2 * MB),
    ):
        if scratchpad_bytes < 0:
            raise ValueError("scratchpad must be non-negative")
        self.spec = spec
        self.config = config
        self.scratchpad_bytes = scratchpad_bytes

    def _trainable_names(self) -> set[str]:
        if self.config.is_end_to_end:
            # E2E trains everything, but only the FC tail that fits the
            # buffer would be SRAM-resident; the paper's E2E baseline
            # keeps the same residency as the proposed design and pays
            # NVM writes for the rest.  SRAM residency here mirrors the
            # proposed design's last-3-layer placement.
            return {l.name for l in self.spec.last_fc(min(3, len(self.spec.fc_layers)))}
        return {l.name for l in self.spec.last_fc(self.config.last_k_fc)}

    def layer_bytes(self, layer: LayerSpec) -> int:
        """Storage for one layer at the platform's weight precision."""
        return layer.weight_count * self.spec.weight_bits // 8

    def build(self) -> MappingReport:
        """Compute the full placement and capacity summary."""
        sram_names = self._trainable_names()
        placements = []
        nvm_bytes = 0
        sram_bytes = 0
        for layer in self.spec.layers:
            size = self.layer_bytes(layer)
            in_sram = layer.name in sram_names
            trainable = self.config.is_end_to_end or in_sram
            placements.append(
                Placement(
                    layer=layer.name,
                    weights=layer.weight_count,
                    bytes=size,
                    device="sram" if in_sram else "nvm",
                    trainable=trainable,
                )
            )
            if in_sram:
                sram_bytes += size
            else:
                nvm_bytes += size
        return MappingReport(
            placements=tuple(placements),
            nvm_bytes=nvm_bytes,
            sram_weight_bytes=sram_bytes,
            sram_gradient_bytes=sram_bytes,  # equal-size accumulators
            sram_scratchpad_bytes=self.scratchpad_bytes,
        )

    def nvm_resident_layers(self) -> tuple[str, ...]:
        """Names of layers whose weights stream from the NVM stack."""
        sram_names = self._trainable_names()
        return tuple(
            l.name for l in self.spec.layers if l.name not in sram_names
        )

    def validate(self, sram_capacity_bytes: int, nvm_capacity_bytes: int) -> MappingReport:
        """Build and check the mapping against device capacities."""
        report = self.build()
        if report.sram_total_bytes > sram_capacity_bytes:
            raise ValueError(
                f"{self.config.name}: SRAM demand {report.sram_total_mb:.1f} MB "
                f"exceeds capacity {sram_capacity_bytes / MB:.1f} MB"
            )
        if report.nvm_bytes > nvm_capacity_bytes:
            raise ValueError(
                f"{self.config.name}: NVM demand {report.nvm_mb:.1f} MB "
                f"exceeds capacity {nvm_capacity_bytes / MB:.1f} MB"
            )
        return report
