"""Memory hierarchy model: STT-MRAM stack, SRAM global buffer, DRAM.

Models the platform of Fig. 4: a 3-D stacked STT-MRAM array (HBM-style
organisation, 1024 I/Os at 2 Gb/s each) holding the frozen weights, an
on-die SRAM global buffer holding the online-trainable FC tail plus
gradient accumulators and scratchpad, and an off-chip camera DRAM behind
a DDR6 link.  Device timings/energies follow Table 1 for STT-MRAM, with
SRAM/DRAM parameters documented in :mod:`repro.memory.technology`.
"""

from repro.memory.technology import (
    MemoryTechnology,
    STT_MRAM,
    ON_DIE_SRAM,
    DDR_DRAM,
    PCM_LIKE,
    RRAM_LIKE,
    NVM_TECHNOLOGIES,
)
from repro.memory.devices import (
    AccessResult,
    AccessCounters,
    MemoryDevice,
    SttMramStack,
    GlobalBuffer,
    CameraDram,
)
from repro.memory.mapping import WeightMapper, Placement, MappingReport
from repro.memory.hbm import HbmAddress, HbmOrganization

__all__ = [
    "MemoryTechnology",
    "STT_MRAM",
    "ON_DIE_SRAM",
    "DDR_DRAM",
    "PCM_LIKE",
    "RRAM_LIKE",
    "NVM_TECHNOLOGIES",
    "AccessResult",
    "AccessCounters",
    "MemoryDevice",
    "SttMramStack",
    "GlobalBuffer",
    "CameraDram",
    "WeightMapper",
    "Placement",
    "MappingReport",
    "HbmAddress",
    "HbmOrganization",
]
