"""Memory devices: capacity + bandwidth wrappers over technologies.

A device turns a :class:`~repro.memory.technology.MemoryTechnology` into
something the performance model can charge transfers against:

    latency = access_latency + bits / sustained_bandwidth
    energy  = bits * energy_per_bit

Writes to NVM are additionally throttled by the write/read latency ratio
(a write occupies the array ~3x longer than a read for STT-MRAM), which
is what makes in-flight weight updates to the stack untenable — the core
premise of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.technology import (
    DDR_DRAM,
    MemoryTechnology,
    ON_DIE_SRAM,
    STT_MRAM,
)

__all__ = [
    "AccessResult",
    "AccessCounters",
    "MemoryDevice",
    "SttMramStack",
    "GlobalBuffer",
    "CameraDram",
]

#: Decimal megabyte, matching the paper's capacity figures (Fig. 4b).
MB = 1_000_000


@dataclass(frozen=True)
class AccessResult:
    """Latency and energy of one transfer."""

    latency_s: float
    energy_j: float
    bits: int

    def __add__(self, other: "AccessResult") -> "AccessResult":
        return AccessResult(
            self.latency_s + other.latency_s,
            self.energy_j + other.energy_j,
            self.bits + other.bits,
        )


@dataclass
class AccessCounters:
    """Cumulative access statistics for one device."""

    read_bits: int = 0
    write_bits: int = 0
    read_energy_j: float = 0.0
    write_energy_j: float = 0.0
    read_time_s: float = 0.0
    write_time_s: float = 0.0

    @property
    def total_energy_j(self) -> float:
        """Total access energy."""
        return self.read_energy_j + self.write_energy_j

    @property
    def total_bits(self) -> int:
        """Total bits moved."""
        return self.read_bits + self.write_bits


class MemoryDevice:
    """A bandwidth- and capacity-constrained memory.

    Parameters
    ----------
    tech:
        Underlying technology (timings and energies).
    capacity_bytes:
        Device capacity; :meth:`check_fits` validates allocations.
    read_bandwidth_bps:
        Sustained read bandwidth in bits/second.
    write_bandwidth_bps:
        Sustained write bandwidth; defaults to read bandwidth scaled by
        the technology's read/write latency ratio.
    """

    def __init__(
        self,
        name: str,
        tech: MemoryTechnology,
        capacity_bytes: int,
        read_bandwidth_bps: float,
        write_bandwidth_bps: float | None = None,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if read_bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.name = name
        self.tech = tech
        self.capacity_bytes = capacity_bytes
        self.read_bandwidth_bps = read_bandwidth_bps
        if write_bandwidth_bps is None:
            write_bandwidth_bps = read_bandwidth_bps / tech.write_read_latency_ratio
        self.write_bandwidth_bps = write_bandwidth_bps
        self.counters = AccessCounters()

    # ------------------------------------------------------------------
    def read(self, bits: int) -> AccessResult:
        """Charge a streaming read of ``bits``."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        latency = self.tech.read_latency_s + bits / self.read_bandwidth_bps
        energy = bits * self.tech.read_energy_per_bit_j
        self.counters.read_bits += bits
        self.counters.read_energy_j += energy
        self.counters.read_time_s += latency
        return AccessResult(latency, energy, bits)

    def write(self, bits: int) -> AccessResult:
        """Charge a streaming write of ``bits``."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        latency = self.tech.write_latency_s + bits / self.write_bandwidth_bps
        energy = bits * self.tech.write_energy_per_bit_j
        self.counters.write_bits += bits
        self.counters.write_energy_j += energy
        self.counters.write_time_s += latency
        return AccessResult(latency, energy, bits)

    def check_fits(self, bytes_needed: int) -> None:
        """Raise if an allocation exceeds device capacity."""
        if bytes_needed > self.capacity_bytes:
            raise ValueError(
                f"{self.name}: need {bytes_needed / MB:.2f} MB "
                f"but capacity is {self.capacity_bytes / MB:.2f} MB"
            )

    def reset_counters(self) -> None:
        """Zero the access statistics."""
        self.counters = AccessCounters()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.name}, {self.capacity_bytes / MB:.1f} MB, "
            f"{self.read_bandwidth_bps / 1e9:.0f} Gb/s)"
        )


class SttMramStack(MemoryDevice):
    """The 3-D stacked STT-MRAM NVM (Fig. 4).

    HBM-style organisation: ``n_ios`` I/O connections between the stack
    and the global buffer, each at ``io_gbps`` Gb/s (the paper: 1024 I/Os
    at 2 Gbit/s each → 2 Tb/s aggregate read bandwidth).
    """

    def __init__(
        self,
        capacity_bytes: int = 128 * MB,
        n_ios: int = 1024,
        io_gbps: float = 2.0,
        tech: MemoryTechnology = STT_MRAM,
    ):
        if n_ios <= 0 or io_gbps <= 0:
            raise ValueError("I/O configuration must be positive")
        self.n_ios = n_ios
        self.io_gbps = io_gbps
        super().__init__(
            name="stt-mram-stack",
            tech=tech,
            capacity_bytes=capacity_bytes,
            read_bandwidth_bps=n_ios * io_gbps * 1e9,
        )


class GlobalBuffer(MemoryDevice):
    """The on-die SRAM global buffer (Fig. 4b: 30 MB + 4.2 MB scratch).

    ``scratchpad_bytes`` is the slice reserved for staging inputs/weights
    into the PE array and collecting partial sums; the remainder holds
    the online-trainable weights and their gradient accumulators.
    """

    def __init__(
        self,
        capacity_bytes: int = 30 * MB,
        scratchpad_bytes: int = int(4.2 * MB),
        width_bits: int = 4096,
        clock_hz: float = 1e9,
        tech: MemoryTechnology = ON_DIE_SRAM,
    ):
        if not 0 <= scratchpad_bytes < capacity_bytes:
            raise ValueError("scratchpad must fit inside the buffer")
        if width_bits <= 0 or clock_hz <= 0:
            raise ValueError("port configuration must be positive")
        self.scratchpad_bytes = scratchpad_bytes
        self.width_bits = width_bits
        self.clock_hz = clock_hz
        super().__init__(
            name="global-buffer",
            tech=tech,
            capacity_bytes=capacity_bytes,
            read_bandwidth_bps=width_bits * clock_hz,
        )

    @property
    def weight_capacity_bytes(self) -> int:
        """Bytes available for weights + gradient accumulators."""
        return self.capacity_bytes - self.scratchpad_bytes


class CameraDram(MemoryDevice):
    """Off-chip camera/frame DRAM behind the DDR6 link (Fig. 4a)."""

    def __init__(
        self,
        capacity_bytes: int = 512 * MB,
        link_gbytes_per_s: float = 32.0,
        tech: MemoryTechnology = DDR_DRAM,
    ):
        if link_gbytes_per_s <= 0:
            raise ValueError("link bandwidth must be positive")
        self.link_gbytes_per_s = link_gbytes_per_s
        super().__init__(
            name="camera-dram",
            tech=tech,
            capacity_bytes=capacity_bytes,
            read_bandwidth_bps=link_gbytes_per_s * 8e9,
            write_bandwidth_bps=link_gbytes_per_s * 8e9,
        )
