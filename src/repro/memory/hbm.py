"""HBM-style organisation of the stacked STT-MRAM (Section III.B).

The paper replaces the DRAM dies of a JEDEC HBM stack (JESD235B) with
STT-MRAM, keeping the channel/bank organisation and the 1024-bit wide
interface.  This module models that organisation explicitly:

* the stack exposes ``channels`` independent channels, each with
  ``banks_per_channel`` banks and a fixed ``row_bytes`` page,
* a physical address maps to (channel, bank, row, column) with
  channel interleaving at ``interleave_bytes`` granularity,
* sequential streams (the weight reads of inference) spread across
  channels and achieve full bandwidth; pathological strides that land
  on one channel only get ``1/channels`` of it.

Used by tests and the design-space example to show *why* streaming
weight reads are the right access pattern for the co-design.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HbmAddress", "HbmOrganization"]


@dataclass(frozen=True)
class HbmAddress:
    """Decoded location of a byte within the stack."""

    channel: int
    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class HbmOrganization:
    """Channel/bank geometry of the stacked NVM.

    Defaults follow JESD235B's 8-channel organisation with 1024 total
    I/Os (128 per channel) and the paper's 2 Gb/s per-pin rate.
    """

    channels: int = 8
    banks_per_channel: int = 16
    row_bytes: int = 2048
    interleave_bytes: int = 256
    ios_per_channel: int = 128
    io_gbps: float = 2.0

    def __post_init__(self) -> None:
        if min(self.channels, self.banks_per_channel, self.row_bytes) <= 0:
            raise ValueError("geometry must be positive")
        if self.interleave_bytes <= 0 or self.ios_per_channel <= 0:
            raise ValueError("interleave and I/O width must be positive")
        if self.row_bytes % self.interleave_bytes != 0:
            raise ValueError("row must be a whole number of interleave units")

    @property
    def total_ios(self) -> int:
        """Total I/O pins (the paper: 1024)."""
        return self.channels * self.ios_per_channel

    @property
    def peak_bandwidth_bps(self) -> float:
        """Aggregate pin bandwidth in bits/second (the paper: 2 Tb/s)."""
        return self.total_ios * self.io_gbps * 1e9

    @property
    def channel_bandwidth_bps(self) -> float:
        """Bandwidth of a single channel."""
        return self.ios_per_channel * self.io_gbps * 1e9

    def decode(self, address: int) -> HbmAddress:
        """Map a byte address to (channel, bank, row, column)."""
        if address < 0:
            raise ValueError("address must be non-negative")
        unit, offset = divmod(address, self.interleave_bytes)
        channel = unit % self.channels
        linear_in_channel = unit // self.channels
        units_per_row = self.row_bytes // self.interleave_bytes
        row_linear, unit_in_row = divmod(linear_in_channel, units_per_row)
        bank = row_linear % self.banks_per_channel
        row = row_linear // self.banks_per_channel
        column = unit_in_row * self.interleave_bytes + offset
        return HbmAddress(channel=channel, bank=bank, row=row, column=column)

    def channels_touched(self, start: int, length: int, stride: int = 1) -> int:
        """Distinct channels hit by a strided access pattern.

        ``stride`` is in bytes between consecutive accessed elements.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        if stride <= 0:
            raise ValueError("stride must be positive")
        seen = set()
        address = start
        for _ in range(length):
            seen.add(self.decode(address).channel)
            if len(seen) == self.channels:
                break
            address += stride
        return len(seen)

    def effective_bandwidth_bps(
        self, start: int, length: int, stride: int = 1
    ) -> float:
        """Sustained bandwidth of a strided stream.

        A stream only uses the channels it touches; sequential streams
        touch all of them and get peak bandwidth.
        """
        touched = self.channels_touched(start, length, stride)
        return touched * self.channel_bandwidth_bps

    def row_activations(self, start: int, length_bytes: int) -> int:
        """Rows opened by a sequential read of ``length_bytes``.

        Row activations cost latency and energy in any DRAM-like
        organisation; sequential weight streams amortise them over
        ``row_bytes``-sized bursts.
        """
        if length_bytes <= 0:
            raise ValueError("length must be positive")
        per_channel = length_bytes // self.channels
        rows = -(-max(per_channel, 1) // self.row_bytes)
        return rows * min(self.channels, max(length_bytes // self.interleave_bytes, 1))
