"""Memory technology parameters.

STT-MRAM values are Table 1 of the paper verbatim ("write/read energy
includes energy of IO, peripheral and STT-MRAM array").  SRAM and DRAM
values are not published in the paper; the constants below are
conventional numbers for a 15 nm-class on-die SRAM and an LPDDR-class
link, and the ablation corners (PCM-like, RRAM-like) follow the relative
orderings of the NVM survey the paper cites ([11], [12]): both are
slower and more write-expensive than STT-MRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MemoryTechnology",
    "STT_MRAM",
    "ON_DIE_SRAM",
    "DDR_DRAM",
    "PCM_LIKE",
    "RRAM_LIKE",
    "NVM_TECHNOLOGIES",
]


@dataclass(frozen=True)
class MemoryTechnology:
    """Latency/energy characteristics of one memory technology.

    Latencies are *access* latencies (time to first word); sustained
    throughput is a property of the device wrapping the technology
    (I/O count and rate), not of the technology itself.
    """

    name: str
    read_latency_s: float
    write_latency_s: float
    read_energy_per_bit_j: float
    write_energy_per_bit_j: float
    non_volatile: bool
    #: Soft-error (single-event upset) rate per stored bit per second at
    #: sea level.  SRAM charge-storage cells are the radiation-sensitive
    #: outlier; magnetic (STT-MRAM) and resistance-based (PCM/RRAM)
    #: storage is orders of magnitude harder, limited by its CMOS
    #: periphery.  Feeds the fault injector's SRAM bit-flip rate via
    #: :func:`repro.faults.plan.sram_flip_rate_from_technology`.
    soft_error_rate_per_bit_s: float = 0.0

    def __post_init__(self) -> None:
        if self.read_latency_s <= 0 or self.write_latency_s <= 0:
            raise ValueError("latencies must be positive")
        if self.read_energy_per_bit_j < 0 or self.write_energy_per_bit_j < 0:
            raise ValueError("energies must be non-negative")
        if self.soft_error_rate_per_bit_s < 0:
            raise ValueError("soft error rate must be non-negative")

    @property
    def write_read_latency_ratio(self) -> float:
        """How much slower writes are than reads (the NVM pain point)."""
        return self.write_latency_s / self.read_latency_s

    @property
    def write_read_energy_ratio(self) -> float:
        """How much more energy writes cost than reads."""
        if self.read_energy_per_bit_j == 0:
            return float("inf")
        return self.write_energy_per_bit_j / self.read_energy_per_bit_j


#: Table 1: 30 ns write / 10 ns read, 4.5 pJ/bit write / 0.7 pJ/bit read.
STT_MRAM = MemoryTechnology(
    name="STT-MRAM",
    read_latency_s=10e-9,
    write_latency_s=30e-9,
    read_energy_per_bit_j=0.7e-12,
    write_energy_per_bit_j=4.5e-12,
    non_volatile=True,
    soft_error_rate_per_bit_s=1e-19,  # magnetic storage is SEU-immune; periphery only
)

#: On-die SRAM global buffer (15 nm class; not published in the paper).
ON_DIE_SRAM = MemoryTechnology(
    name="on-die-SRAM",
    read_latency_s=1e-9,
    write_latency_s=1e-9,
    read_energy_per_bit_j=0.06e-12,
    write_energy_per_bit_j=0.06e-12,
    non_volatile=False,
    soft_error_rate_per_bit_s=3e-17,  # ~1e-13 upsets/bit-hour, sea-level neutron flux
)

#: Off-chip camera-buffer DRAM behind the DDR6 link.
DDR_DRAM = MemoryTechnology(
    name="DDR-DRAM",
    read_latency_s=50e-9,
    write_latency_s=50e-9,
    read_energy_per_bit_j=4.0e-12,
    write_energy_per_bit_j=4.0e-12,
    non_volatile=False,
    soft_error_rate_per_bit_s=5e-18,  # larger cell capacitance than SRAM
)

#: Phase-change-memory-like corner for the NVM ablation (slower, far
#: more write-expensive than STT-MRAM).
PCM_LIKE = MemoryTechnology(
    name="PCM-like",
    read_latency_s=60e-9,
    write_latency_s=150e-9,
    read_energy_per_bit_j=2.0e-12,
    write_energy_per_bit_j=15.0e-12,
    non_volatile=True,
    soft_error_rate_per_bit_s=1e-19,  # resistance storage; periphery only
)

#: Resistive-RAM-like corner (moderate speed, high write energy and
#: variability; the paper cites variability as RRAM's blocker).
RRAM_LIKE = MemoryTechnology(
    name="RRAM-like",
    read_latency_s=20e-9,
    write_latency_s=100e-9,
    read_energy_per_bit_j=1.0e-12,
    write_energy_per_bit_j=10.0e-12,
    non_volatile=True,
    soft_error_rate_per_bit_s=1e-19,  # resistance storage; periphery only
)

#: NVM candidates for the technology-sweep ablation.
NVM_TECHNOLOGIES = {
    "STT-MRAM": STT_MRAM,
    "PCM-like": PCM_LIKE,
    "RRAM-like": RRAM_LIKE,
}
