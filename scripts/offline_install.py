"""Offline editable install.

``pip install -e .`` needs the ``wheel`` package (even with
``--no-use-pep517``); fully-offline environments may not have it.  This
script provides the equivalent of an editable install without any
network access: it writes a ``.pth`` file pointing at ``src/`` into the
active interpreter's site-packages.

Usage:  python scripts/offline_install.py [--remove]
"""

from __future__ import annotations

import argparse
import site
import sys
from pathlib import Path

PTH_NAME = "repro-editable.pth"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--remove", action="store_true", help="uninstall the .pth link"
    )
    args = parser.parse_args()
    src = Path(__file__).resolve().parent.parent / "src"
    if not (src / "repro" / "__init__.py").exists():
        print(f"error: {src} does not contain the repro package", file=sys.stderr)
        return 1
    site_dir = Path(site.getsitepackages()[0])
    pth = site_dir / PTH_NAME
    if args.remove:
        if pth.exists():
            pth.unlink()
            print(f"removed {pth}")
        else:
            print("nothing to remove")
        return 0
    pth.write_text(str(src) + "\n")
    print(f"wrote {pth} -> {src}")
    print("verify with: python -c 'import repro; print(repro.__version__)'")
    return 0


if __name__ == "__main__":
    sys.exit(main())
